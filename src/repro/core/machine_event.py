"""Frozen copy of the event-driven machine core (PR-5 generation).

This module preserves the object-per-instruction, event-driven cycle
loop exactly as it shipped before the array-backed rewrite of
:mod:`repro.core.machine`, so benchmarks can measure the new core's
speedup against its immediate predecessor (``machine_reference`` keeps
the original seed core as the parity anchor).  Do not optimize this
file; it is a measurement baseline.

Pipeline per cycle (processed in reverse order so stages are pipelined):

1. **retire** — in-order commit of up to 16 instructions: stores write the
   committed memory image, the fill unit and bias table consume the retired
   stream, and branch predictors train.
2. **complete** — instructions finishing execution this cycle wake their
   dependents; branches verify their predictions and trigger checkpoint
   repair on a misprediction, promoted-branch fault, or wrong indirect
   target.
3. **schedule** — each of the 16 universal function units issues its oldest
   ready instruction; loads additionally pass the memory scheduler
   (conservative: every older store's address must be known; perfect:
   oracle dependences only) with store-queue forwarding.
4. **dispatch** — up to 16 instructions rename, allocate reservation-station
   slots, *functionally execute* against the speculative state (so
   wrong-path instructions run real semantics), and take checkpoints at
   fetch-block boundaries (up to 3/cycle).
5. **fetch** — the front end supplies the next trace segment or icache
   block along the predicted path, stalling for traps, full windows,
   icache misses, unknown indirect targets, or recovery bubbles.

Inactive issue: when a trace line partially matches the prediction, its
remainder is dispatched *dormant* — occupying window slots but not
executing.  If the diverging branch resolves against its prediction the
dormant instructions activate immediately (zero refetch penalty); otherwise
they squash.

The cycle loop is event-driven rather than scan-driven:

* Completions live in a wheel (dict keyed by absolute finish cycle) with a
  min-heap of pending bucket cycles alongside, so the machine always knows
  when the next instruction finishes without scanning the window.
* Readiness is tracked by a single counter (``ready_total``) maintained at
  wake-up/issue/squash, so quiescent cycles skip the scheduler entirely,
  and the conservative memory scheduler keeps a lazily-cleaned min-heap of
  stores with unknown addresses instead of rescanning the store queue per
  blocked load.
* When a cycle ends with nothing ready, nothing dispatchable, and the
  fetch stage blocked on a stable stall regime (trap, misfetch, recovery
  bubble, icache miss, full window), the machine jumps straight to the
  cycle before the next completion event and charges the whole quiescent
  stretch to the stall's cycle-accounting category in one batch — the
  result is identical to stepping those cycles one at a time.
* Dependence metadata is pre-resolved per instruction: dispatch wires
  source operands once via the instruction's cached ``_srcs`` tuple and an
  inlined interpreter (no per-instruction call into the shared executor),
  and the checkpoint-boundary test is cached on the record at fetch.
"""

from __future__ import annotations

import gc
import heapq
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig
from repro.core.inflight import (
    Checkpoint, FetchGroup, InFlight,
    S_DORMANT, S_WAITING, S_READY, S_MEM_BLOCKED, S_EXECUTING, S_DONE, S_SQUASHED,
)
from repro.frontend.build import build_engine
from repro.frontend.fetch import FetchResult
from repro.frontend.stats import CycleCategory
from repro.isa.executor import STACK_BASE
from repro.isa.instruction import NUM_REGS, REG_LINK, REG_SP
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program

#: Extra recovery cycles charged when a promoted branch faults: the machine
#: backs up to the previous checkpoint rather than the branch itself.
FAULT_EXTRA_PENALTY = 2

#: Pipeline bubble between a recovery and the first redirected fetch.
REDIRECT_BUBBLE = 1

_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63
_TWO64 = 1 << 64

# Opcode members as module globals: the dispatch-stage interpreter below is
# a frequency-ordered identity chain over these (same ordering rationale as
# the shared executor's step_instruction).
_ADDI = Opcode.ADDI; _ADD = Opcode.ADD; _LD = Opcode.LD; _ST = Opcode.ST
_BNE = Opcode.BNE; _BEQ = Opcode.BEQ; _BLT = Opcode.BLT; _BGE = Opcode.BGE
_SUB = Opcode.SUB; _AND = Opcode.AND; _OR = Opcode.OR; _XOR = Opcode.XOR
_SHL = Opcode.SHL; _SHR = Opcode.SHR; _SLT = Opcode.SLT; _MUL = Opcode.MUL
_ANDI = Opcode.ANDI; _ORI = Opcode.ORI; _XORI = Opcode.XORI
_SLTI = Opcode.SLTI; _LUI = Opcode.LUI; _JMP = Opcode.JMP
_CALL = Opcode.CALL; _RET = Opcode.RET; _JR = Opcode.JR
_NOP = Opcode.NOP; _TRAP = Opcode.TRAP; _HALT = Opcode.HALT

# Quiescent-stretch stall regimes (priority order of the fetch stage).
_R_TRAP = 0
_R_MISFETCH = 1
_R_BUBBLE = 2
_R_ICACHE = 3
_R_FULL_WINDOW = 4


@dataclass
class MachineResult:
    """End-to-end statistics of one machine run."""

    benchmark: str
    config: MachineConfig
    cycles: int = 0
    retired: int = 0
    fetches: int = 0
    cycle_accounting: Counter = field(default_factory=Counter)
    # branches (retired, correct-path only)
    cond_branches: int = 0
    promoted_branches: int = 0
    cond_mispredicts: int = 0
    promoted_faults: int = 0
    indirect_jumps: int = 0
    indirect_mispredicts: int = 0
    # resolution times of mispredicted branches (fetch -> redirect)
    resolution_time_sum: int = 0
    resolution_count: int = 0
    # memory behaviour
    load_forwards: int = 0
    dcache_accesses: int = 0
    # inactive issue
    inactive_issued: int = 0       # instructions issued dormant
    dormant_activations: int = 0   # dormant instructions activated by recovery
    # structures
    tc_hits: int = 0
    tc_misses: int = 0
    l1i_misses: int = 0
    promotions: int = 0
    demotions: int = 0
    fill_reasons: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def total_mispredicted_branches(self) -> int:
        return self.cond_mispredicts + self.promoted_faults + self.indirect_mispredicts

    @property
    def avg_resolution_time(self) -> float:
        if not self.resolution_count:
            return 0.0
        return self.resolution_time_sum / self.resolution_count

    @property
    def mispredict_lost_cycles(self) -> int:
        return self.cycle_accounting[CycleCategory.BRANCH_MISSES]


class Machine:
    """One configured machine bound to one program."""

    def __init__(self, program: Program, config: MachineConfig,
                 max_instructions: Optional[int] = 100_000, engine=None):
        self.program = program
        self.config = config
        self.max_instructions = max_instructions
        if engine is None:
            engine = build_engine(program, config.frontend, memory_config=config.memory)
        else:
            # A functionally warmed engine: predictors, caches and bias
            # table stay trained, but the speculative fetch state must
            # match a machine starting at the program entry.
            engine.restore((0, ()))
        self.engine = engine
        # The core repairs from per-branch checkpoints, so it needs the
        # engine to capture (GHR, RAS) snapshots — engines default to the
        # capture-off fast path (warmed engines may also arrive with
        # capture disabled by the front-end simulator).
        engine.capture_snapshots = True
        self.fill_unit = getattr(self.engine, "fill_unit", None)
        core = config.core

        # Speculative architectural state (dispatch-order functional execution).
        self.spec_regs = [0] * NUM_REGS
        self.spec_regs[REG_SP] = STACK_BASE
        self.memory_image: Dict[int, int] = dict(program.data)
        self.rename: List[Optional[InFlight]] = [None] * NUM_REGS
        self.store_queue: List[InFlight] = []
        self.load_queue: List[InFlight] = []
        # Address-indexed view of the store queue: mem_addr -> stores in
        # dispatch (= sequence) order.  Entries are filtered on read with
        # ``sq_live``/state rather than eagerly removed, with dead tails
        # pruned opportunistically, so load forwarding and memory
        # scheduling probe one bucket instead of scanning the whole queue.
        self.store_map: Dict[int, List[InFlight]] = {}
        # Committed architectural state, maintained at retire.  Only used to
        # reconstruct speculative state when a recovery has no live
        # checkpoint to restore (rare: promoted fault before any boundary).
        self.arch_regs = list(self.spec_regs)
        self.arch_ghr = 0
        self.arch_ras: List[int] = []

        # Window structures.
        self.rob: deque = deque()
        self.rs_count = [0] * core.n_fus
        self.ready_heaps: List[list] = [[] for _ in range(core.n_fus)]
        self.completions: Dict[int, List[InFlight]] = {}
        self.checkpoints: List[Tuple[int, Checkpoint]] = []  # (seq, cp), sorted
        self.blocked_loads: List[InFlight] = []
        # Event bookkeeping: pending completion-bucket cycles (min-heap,
        # one entry per bucket), count of READY-state instructions, and the
        # conservative memory scheduler's heap of (seq, store) records whose
        # addresses the scheduler does not yet consider known.  Both heaps
        # are cleaned lazily: entries are invalidated in place by state
        # changes and dropped when they surface.
        self.comp_cycles: List[int] = []
        self.ready_total = 0
        self.unknown_stores: List[Tuple[int, InFlight]] = []

        # Fetch state.
        self.pc = program.entry
        self.cycle = 0
        self.seq = 0
        self.fetch_id = 0
        self.halted = False
        self.redirect_bubble = 0
        self.icache_stall = 0
        self.pending_fetch: Optional[Tuple[FetchResult, FetchGroup]] = None
        self.dispatch_queue: deque = deque()  # InFlights awaiting dispatch slots
        self.trap_pending: Optional[int] = None     # seq of in-flight trap
        self.misfetch_waiting: Optional[int] = None  # seq of unresolved JR
        self.fault_redirect_delay = 0

        self.result = MachineResult(benchmark=program.name, config=config)
        self._fetch_cycle_groups: List[Tuple[int, FetchGroup]] = []
        self._mem_waiters: Dict[int, List[InFlight]] = {}  # store seq -> loads
        # Sequence numbers after which the fill unit's pending segment is
        # cut: recoveries re-synchronize filling with fetch alignment, but
        # the cut must land where the *retire* stream reaches the
        # recovered branch, not where the out-of-order resolution happened.
        self._fill_cuts: set = set()

        # Stall-cycle accounting accumulators; folded into the result's
        # Counter once at the end of the run (plain-int increments are much
        # cheaper than enum-keyed Counter updates in the fetch stage, and
        # the quiescent skip adds whole stretches at once).
        self.acc_traps = 0
        self.acc_misfetch = 0
        self.acc_branch_miss = 0
        self.acc_cache_miss = 0
        self.acc_full_window = 0

        # Stable per-run bindings for the hot loops.
        self._n_fus = core.n_fus
        self._rs_per_fu = core.rs_per_fu
        # Reserve three checkpoints for dormant activation: an inactive
        # buffer holds at most three dynamic branches and its checkpoints
        # are created during recovery, outside the dispatch stage's budget.
        self._cp_budget = core.max_checkpoints - 3
        self._cp_per_cycle = core.checkpoints_per_cycle
        self._alu_latency = core.alu_latency
        self._mul_latency = core.mul_latency
        self._perfect_disamb = core.perfect_disambiguation
        self._ghr_mask = self.engine.ghr.mask
        self._fill_retire = self.fill_unit.retire if self.fill_unit is not None else None
        self._data_latency = self.engine.memory.data_latency

        # Structural self-checks on the recovery paths, armed at
        # construction when REPRO_VALIDATE enables any validation mode
        # (zero cost when off — the flag gates every call site).
        from repro import validate
        self._validate_state = validate.invariants_armed()

    # ------------------------------------------------------------------ run

    def run(self) -> MachineResult:
        core = self.config.core
        max_cycles = 200 * (self.max_instructions or 100_000)
        retire_width = core.retire_width
        issue_width = core.issue_width
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while not self.halted and self.cycle < max_cycles:
                self.cycle += 1
                if self.rob:
                    self._retire(retire_width)
                self._complete()
                if self.ready_total:
                    self._schedule()
                if self.dispatch_queue:
                    self._dispatch(issue_width)
                self._fetch()
                if not self.ready_total and not self.halted:
                    self._skip_quiescent(max_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._finish()

    def _skip_quiescent(self, max_cycles: int) -> None:
        """Jump over cycles in which no pipeline stage can make progress.

        Called at the end of a cycle with nothing in READY state.  If the
        next cycle is provably a pure stall — retire blocked, scheduler
        idle, dispatch blocked (or empty), and the fetch stage charging a
        stall category without touching the front end — then every cycle up
        to the next completion event behaves identically, so the machine
        advances straight there and batches the accounting.
        """
        rob = self.rob
        if rob:
            st = rob[0].state
            if st == S_DONE or st == S_SQUASHED:
                return  # retire would make progress (or clean up) next cycle
        queue = self.dispatch_queue
        if queue:
            head = queue[0]
            if self.rs_count[head.seq % self._n_fus] < self._rs_per_fu and not (
                head.is_active and head.cp_need
                and len(self.checkpoints) >= self._cp_budget
            ):
                return  # dispatch would place this instruction next cycle
        # Classify the fetch stall, mirroring the fetch stage's priority
        # order.  A cycle whose fetch would actually touch the front end
        # (trace-cache/icache access, off-image wrong-path probe) is never
        # skipped.
        if self.trap_pending is not None:
            regime = _R_TRAP
        elif self.misfetch_waiting is not None:
            regime = _R_MISFETCH
        elif self.redirect_bubble > 0:
            regime = _R_BUBBLE
        elif self.icache_stall > 0:
            regime = _R_ICACHE
        elif queue:
            regime = _R_FULL_WINDOW
        else:
            return
        cycle = self.cycle
        heap = self.comp_cycles
        while heap and heap[0] <= cycle:  # drop drained buckets
            heapq.heappop(heap)
        horizon = heap[0] - 1 if heap else max_cycles
        if regime == _R_BUBBLE:
            bound = cycle + self.redirect_bubble
            if bound < horizon:
                horizon = bound
        elif regime == _R_ICACHE:
            bound = cycle + self.icache_stall
            if bound < horizon:
                horizon = bound
        if horizon > max_cycles:
            horizon = max_cycles
        skipped = horizon - cycle
        if skipped <= 0:
            return
        self.cycle = horizon
        if regime == _R_TRAP:
            self.acc_traps += skipped
        elif regime == _R_MISFETCH:
            self.acc_misfetch += skipped
        elif regime == _R_BUBBLE:
            self.acc_branch_miss += skipped
            self.redirect_bubble -= skipped
        elif regime == _R_ICACHE:
            self.acc_cache_miss += skipped
            self.icache_stall -= skipped
            if self.icache_stall == 0 and self.pending_fetch is not None:
                result, group = self.pending_fetch
                self.pending_fetch = None
                self._enqueue_fetch(result, group)
        else:
            self.acc_full_window += skipped

    # ---------------------------------------------------------------- retire

    def _retire(self, width: int) -> None:
        retired = 0
        rob = self.rob
        popleft = rob.popleft
        while rob:
            head = rob[0]
            st = head.state
            if st == S_SQUASHED:
                popleft()
                continue
            if st != S_DONE or not head.is_active:
                return
            popleft()
            retired += 1
            self._commit(head)
            if self.halted or retired >= width:
                return

    def _commit(self, rec: InFlight) -> None:
        result = self.result
        result.retired += 1
        rec.group.retired_any = True
        inst = rec.inst
        if rec.dest is not None:
            self.arch_regs[rec.dest] = rec.value
        fill_retire = self._fill_retire
        if fill_retire is not None:
            fill_retire(inst, rec.taken)
            if rec.seq in self._fill_cuts:
                self._fill_cuts.discard(rec.seq)
                self.fill_unit.note_recovery()
        code = inst.op.commit_code
        if code:
            if code == 1:  # store
                self.memory_image[rec.mem_addr] = rec.value
                rec.sq_live = False
                if self.store_queue and self.store_queue[0] is rec:
                    self.store_queue.pop(0)
                else:  # pragma: no cover - defensive
                    self.store_queue.remove(rec)
            elif code == 2:  # load
                if self.load_queue and self.load_queue[0] is rec:
                    self.load_queue.pop(0)
                elif rec in self.load_queue:
                    self.load_queue.remove(rec)
            elif code == 3:  # conditional branch
                self.arch_ghr = ((self.arch_ghr << 1) | int(rec.taken)) & self._ghr_mask
                if rec.promoted:
                    result.promoted_branches += 1
                else:
                    result.cond_branches += 1
                    if rec.pred_record is not None:
                        self.engine.train_branch(
                            rec.pred_record, rec.taken, tuple(rec.group.actual_path)
                        )
                        rec.group.actual_path.append(rec.taken)
            elif code == 4:  # call
                self.arch_ras.append(inst.fall_through)
            elif code == 5:  # return
                if self.arch_ras:
                    self.arch_ras.pop()
            elif code == 6:  # indirect
                result.indirect_jumps += 1
                self.engine.indirect.update(inst.addr, rec.next_pc)
            elif code == 7:  # trap
                if self.trap_pending == rec.seq:
                    self.trap_pending = None
            elif code == 8:  # halt
                self.halted = True
        if rec.checkpoint is not None:
            self._drop_checkpoint(rec)
        if self.max_instructions is not None and result.retired >= self.max_instructions:
            self.halted = True

    def _drop_checkpoint(self, rec: InFlight) -> None:
        if rec.checkpoint is not None:
            for i, (seq, _cp) in enumerate(self.checkpoints):
                if seq == rec.seq:
                    del self.checkpoints[i]
                    break
            rec.checkpoint = None
            if self._validate_state:
                self.validate_state()

    # -------------------------------------------------------------- complete

    def _complete(self) -> None:
        done = self.completions.pop(self.cycle, None)
        if not done:
            return
        heappush = heapq.heappush
        ready_heaps = self.ready_heaps
        for rec in done:
            if rec.state == S_SQUASHED:
                continue
            rec.state = S_DONE
            deps = rec.dependents
            if deps:
                for dep in deps:
                    if dep.state == S_WAITING:
                        remaining = dep.pending_srcs - 1
                        dep.pending_srcs = remaining
                        if remaining <= 0:
                            dep.state = S_READY
                            self.ready_total += 1
                            heappush(ready_heaps[dep.fu], (dep.seq, dep))
                rec.dependents = None
            code = rec.inst.op.commit_code
            if code == 1:  # store
                rec.addr_known = True
                self._wake_store_waiters(rec)
            elif code == 3:  # conditional branch
                self._resolve_branch(rec)
            elif code == 5 or code == 6:  # return / indirect
                self._resolve_indirect(rec)
            if self.misfetch_waiting == rec.seq:
                self.misfetch_waiting = None
                self.pc = rec.next_pc

    def _wake_store_waiters(self, store: InFlight) -> None:
        waiters = self._mem_waiters.pop(store.seq, None)
        if waiters:
            for load in waiters:
                if load.state == S_MEM_BLOCKED:
                    self._make_ready(load)
        if self.blocked_loads:
            oldest_unknown = self._oldest_unknown_store_seq()
            still_blocked = []
            for load in self.blocked_loads:
                if load.state != S_MEM_BLOCKED:
                    continue
                if oldest_unknown is None or oldest_unknown >= load.seq:
                    self._make_ready(load)
                else:
                    still_blocked.append(load)
            self.blocked_loads = still_blocked

    def _make_ready(self, rec: InFlight) -> None:
        rec.state = S_READY
        self.ready_total += 1
        heapq.heappush(self.ready_heaps[rec.fu], (rec.seq, rec))

    # --------------------------------------------------------- branch repair

    def _resolve_branch(self, rec: InFlight) -> None:
        actual = rec.taken
        if rec.promoted:
            predicted = rec.static_dir
        else:
            predicted = rec.predicted_taken
        if predicted == actual:
            if rec.inactive_buffer:
                for dormant in rec.inactive_buffer:
                    self._squash_one(dormant)
                rec.inactive_buffer = None
            return
        # Mispredicted.  Track stats, then repair.
        self.result.resolution_time_sum += self.cycle + REDIRECT_BUBBLE - rec.fetch_cycle
        self.result.resolution_count += 1
        if rec.promoted:
            self.result.promoted_faults += 1
            self._recover_fault(rec)
        else:
            self.result.cond_mispredicts += 1
            self._recover_mispredict(rec)

    def _recover_mispredict(self, branch: InFlight) -> None:
        """Checkpoint repair at the branch's own checkpoint."""
        cp = branch.checkpoint
        assert cp is not None, "dynamic branch without checkpoint"
        self._restore(cp)
        self.engine.ghr.push(branch.taken)
        buffer = branch.inactive_buffer
        branch.inactive_buffer = None
        activate = bool(buffer) and buffer[0].inst.addr == branch.next_pc
        exempt = frozenset(rec.seq for rec in buffer) if activate else frozenset()
        self._squash_younger(branch.seq, exempt=exempt)
        self._fill_cuts.add(branch.seq)
        # The checkpoint stays live until the branch retires; a later fault
        # rolling back to it must resume along the now-known-correct path.
        cp.resume_pc = branch.next_pc
        if activate:
            redirect = self._activate_dormant(buffer)
        else:
            redirect = branch.next_pc
        self.pc = redirect
        self.redirect_bubble = REDIRECT_BUBBLE
        self._clear_fetch_state()

    def _recover_fault(self, branch: InFlight) -> None:
        """Promoted-branch fault: back up to the *previous* checkpoint.

        The machine restores the nearest older checkpoint, squashes
        everything younger than it (including correct-path work in the
        faulting atomic unit), and refetches from the checkpoint's resume
        point with a one-shot direction override installed so the branch
        executes correctly this time.
        """
        cp_entry = None
        for seq, cp in reversed(self.checkpoints):
            if seq < branch.seq:
                cp_entry = (seq, cp)
                break
        if branch.inactive_buffer:
            for dormant in branch.inactive_buffer:
                self._squash_one(dormant)
            branch.inactive_buffer = None
        add_fault_override = getattr(self.engine, "add_fault_override", None)
        if add_fault_override is not None:
            add_fault_override(branch.inst.addr, branch.taken)
        if cp_entry is None:
            # No older checkpoint alive (fault very early in a fetch
            # burst): fall back to branch-local recovery.
            self._restore_at_branch(branch)
            self.pc = branch.next_pc
        else:
            seq, cp = cp_entry
            owner = self._find_in_rob(seq)
            self._fill_cuts.add(seq)
            self._restore(cp)
            if owner is not None and owner.inst.op.is_cond_branch:
                if owner.state == S_DONE:
                    self.engine.ghr.push(owner.taken)
                else:
                    self.engine.ghr.push(
                        owner.static_dir if owner.promoted else owner.predicted_taken
                    )
            self._squash_younger(seq)
            self.pc = cp.resume_pc if cp.resume_pc is not None else branch.next_pc
        self.redirect_bubble = REDIRECT_BUBBLE + FAULT_EXTRA_PENALTY
        self._clear_fetch_state()

    def _restore_at_branch(self, branch: InFlight) -> None:
        """Recovery at a branch without its own checkpoint.

        Reconstructs speculative state by replaying the window on top of
        the committed architectural state: registers and rename from every
        live instruction up to the branch, global history and return
        address stack from the in-flight control instructions.
        """
        regs = list(self.arch_regs)
        rename: List[Optional[InFlight]] = [None] * NUM_REGS
        ghr = self.arch_ghr
        ras = list(self.arch_ras)
        for rec in self.rob:
            if rec.seq > branch.seq or rec.state == S_SQUASHED or not rec.is_active:
                continue
            if rec.dest is not None:
                regs[rec.dest] = rec.value
                rename[rec.dest] = rec
            op = rec.inst.op
            if op.is_cond_branch:
                fetched_dir = rec.static_dir if rec.promoted else rec.predicted_taken
                if rec.seq == branch.seq:
                    fetched_dir = rec.taken  # the repair pushes the actual outcome
                ghr = ((ghr << 1) | int(bool(fetched_dir))) & self._ghr_mask
            elif op.opclass is OpClass.CALL:
                ras.append(rec.inst.fall_through)
            elif op.opclass is OpClass.RETURN and ras:
                ras.pop()
        self.spec_regs = regs
        self.rename = rename
        self.engine.ghr.restore(ghr)
        self.engine.ras.restore(tuple(ras))
        self._truncate_mem_queues(branch.seq)
        self._rescan_mem_blocked()
        self._squash_younger(branch.seq)

    def _resolve_indirect(self, rec: InFlight) -> None:
        """JR / RET target verification."""
        if rec.predicted_next is None:
            # Misfetch: fetch has been stalled on this jump; _complete
            # redirects via misfetch_waiting.
            return
        if rec.predicted_next == rec.next_pc:
            return
        self.result.indirect_mispredicts += 1
        self.result.resolution_time_sum += self.cycle + REDIRECT_BUBBLE - rec.fetch_cycle
        self.result.resolution_count += 1
        cp = rec.checkpoint
        self._fill_cuts.add(rec.seq)
        if cp is not None:
            self._restore(cp)
            self._squash_younger(rec.seq)
            cp.resume_pc = rec.next_pc
        else:  # pragma: no cover - indirect fetch-enders always checkpoint
            self._restore_at_branch(rec)
        self.pc = rec.next_pc
        self.redirect_bubble = REDIRECT_BUBBLE
        self._clear_fetch_state()

    def _restore(self, cp: Checkpoint) -> None:
        self.spec_regs = list(cp.regs)
        self.rename = list(cp.rename)
        self.engine.ghr.restore(cp.ghr_before)
        self.engine.ras.restore(cp.ras_state)
        self._truncate_mem_queues(cp.seq)
        self._rescan_mem_blocked()
        if self._validate_state:
            self.validate_state()

    def validate_state(self) -> None:
        """Check the core's structural invariants (validation mode only).

        Called after every checkpoint restore and drop; each check names
        a contract the recovery machinery must maintain:

        * the checkpoint stack is strictly ordered by sequence number
          (restores binary-search and pop it by seq);
        * the store queue is in dispatch (sequence) order and every
          member is flagged ``sq_live`` (commit and truncation clear the
          flag exactly when they remove the entry);
        * every live store reachable through the address-indexed
          ``store_map`` is present in the store queue — a map entry
          outliving its queue entry would forward dead data to loads.
        """
        from repro.validate.errors import InvariantError
        checkpoints = self.checkpoints
        for i in range(1, len(checkpoints)):
            if checkpoints[i - 1][0] >= checkpoints[i][0]:
                raise InvariantError(
                    "checkpoint stack out of order: "
                    f"{[seq for seq, _ in checkpoints]}")
        queue_ids = set()
        prev_seq = -1
        for store in self.store_queue:
            if store.seq <= prev_seq:
                raise InvariantError(
                    "store queue out of dispatch order at "
                    f"seq {store.seq} (after {prev_seq})")
            prev_seq = store.seq
            if not store.sq_live:
                raise InvariantError(
                    f"store seq {store.seq} is in the store queue but "
                    "not flagged sq_live")
            queue_ids.add(id(store))
        for addr, bucket in self.store_map.items():
            for store in bucket:
                if store.sq_live and store.state != S_SQUASHED \
                        and id(store) not in queue_ids:
                    raise InvariantError(
                        f"live store seq {store.seq} (addr {addr:#x}) is "
                        "in store_map but missing from the store queue")

    def _truncate_mem_queues(self, seq: int) -> None:
        """Drop store/load-queue entries younger than ``seq``.

        Truncation is by sequence number, not by remembered length: older
        entries may have retired from the queue front since the checkpoint
        was taken.
        """
        keep = []
        for store in self.store_queue:
            if store.seq <= seq:
                keep.append(store)
            else:
                store.addr_known = True  # squashed; stop blocking loads
                store.sq_live = False
        self.store_queue = keep
        self.load_queue = [load for load in self.load_queue if load.seq <= seq]

    def _rescan_mem_blocked(self) -> None:
        """Re-evaluate every memory-blocked load after a recovery.

        The store a load was waiting on may have been squashed; waking the
        loads and letting the scheduler re-run its checks is always safe.
        """
        waiting = list(self.blocked_loads)
        for loads in self._mem_waiters.values():
            waiting.extend(loads)
        self.blocked_loads = []
        self._mem_waiters = {}
        for load in waiting:
            if load.state == S_MEM_BLOCKED:
                self._make_ready(load)

    def _squash_younger(self, seq: int, exempt: frozenset = frozenset()) -> None:
        """Kill everything younger than ``seq`` except exempted sequence
        numbers (an inactive buffer about to be activated).

        The ROB is ordered by sequence number, so walking from the young
        end and stopping at the anchor visits only the records that can
        possibly squash — recoveries are frequent enough on branchy codes
        that a full-ROB sweep per recovery was a measurable cost.
        """
        squash_one = self._squash_one
        for rec in reversed(self.rob):
            if rec.seq <= seq:
                break
            if rec.seq not in exempt and rec.state != S_SQUASHED:
                squash_one(rec)
        # Anything still waiting to dispatch is on the wrong path too;
        # exempted records leave the queue and are force-dispatched by
        # dormant activation.
        for rec in self.dispatch_queue:
            if rec.seq not in exempt and rec.state != S_SQUASHED:
                squash_one(rec)
        self.dispatch_queue.clear()
        checkpoints = self.checkpoints
        while checkpoints and checkpoints[-1][0] > seq:
            checkpoints.pop()
        if self.trap_pending is not None and self.trap_pending > seq:
            self.trap_pending = None
        if self.misfetch_waiting is not None and self.misfetch_waiting > seq:
            self.misfetch_waiting = None

    def _squash_one(self, rec: InFlight) -> None:
        previous = rec.state
        rec.state = S_SQUASHED
        rec.dependents = None
        rec.checkpoint = None
        if rec.inactive_buffer:
            for dormant in rec.inactive_buffer:
                if dormant.state != S_SQUASHED:
                    self._squash_one(dormant)
            rec.inactive_buffer = None
        if previous == S_READY:
            self.ready_total -= 1
        # States below EXECUTING still hold a reservation-station slot.
        if previous < S_EXECUTING and rec.dispatch_cycle >= 0:
            self.rs_count[rec.fu] -= 1

    def _find_in_rob(self, seq: int) -> Optional[InFlight]:
        for rec in reversed(self.rob):
            if rec.seq == seq:
                return rec
            if rec.seq < seq:
                return None
        return None

    def _clear_fetch_state(self) -> None:
        self.pending_fetch = None
        self.icache_stall = 0

    def _activate_dormant(self, buffer: List[InFlight]) -> int:
        """Wake inactively issued instructions after their branch
        mispredicted in their favour; returns the fetch resume address."""
        resume = buffer[-1].inst.addr + 1
        n_fus = self._n_fus
        for rec in buffer:
            if rec.state == S_SQUASHED and rec.dispatch_cycle >= 0:
                # An *older* recovery (e.g. a promoted-branch fault rolling
                # back past this fetch) squashed the buffer while its branch
                # was still unresolved.  The entry is still in the ROB at
                # the right position: resurrect it in place.
                self.rs_count[rec.seq % n_fus] += 1
            if rec.dispatch_cycle < 0:
                # Still in (or squashed out of) the dispatch queue: give it
                # its window slot now — it issues as part of the recovery.
                rec.fu = rec.seq % n_fus
                self.rs_count[rec.fu] += 1
                self.rob.append(rec)
                rec.dispatch_cycle = self.cycle
            rec.is_active = True
            self._wire_and_execute(rec)
            self.result.dormant_activations += 1
            resume = rec.next_pc
            inst = rec.inst
            if inst.op.is_cond_branch:
                # The embedded trace direction serves as the prediction
                # (these branches were never dynamically predicted).
                # Promoted branches do not get checkpoints, matching the
                # dispatch policy.
                if not rec.promoted:
                    rec.predicted_taken = rec.static_dir
                    self._checkpoint_for(rec)
                self.engine.ghr.push(rec.static_dir)
            elif inst.op is Opcode.CALL:
                self.engine.ras.push(inst.fall_through)
        return resume

    # -------------------------------------------------------------- schedule

    def _schedule(self) -> None:
        heappop = heapq.heappop
        heappush = heapq.heappush
        rs_count = self.rs_count
        completions = self.completions
        comp_cycles = self.comp_cycles
        cycle = self.cycle
        alu_latency = self._alu_latency
        mul_latency = self._mul_latency
        ready_total = self.ready_total
        for fu, heap in enumerate(self.ready_heaps):
            if not heap:
                continue
            while heap:
                rec = heap[0][1]
                if rec.state != S_READY:
                    heappop(heap)  # squashed or stale entry
                    continue
                code = rec.inst.op.commit_code
                if code == 2:  # load
                    verdict = self._try_schedule_load(rec)
                    if verdict is None:
                        # Blocked; parked with the memory scheduler.
                        heappop(heap)
                        ready_total -= 1
                        continue
                    latency = verdict
                elif code == 9:  # MUL
                    latency = mul_latency
                else:
                    latency = alu_latency
                heappop(heap)
                rec.state = S_EXECUTING
                rs_count[fu] -= 1
                ready_total -= 1
                finish = cycle + latency
                bucket = completions.get(finish)
                if bucket is None:
                    completions[finish] = [rec]
                    heappush(comp_cycles, finish)
                else:
                    bucket.append(rec)
                break
            if not ready_total:
                break
        self.ready_total = ready_total

    def _oldest_unknown_store_seq(self) -> Optional[int]:
        """Sequence number of the oldest store whose address the memory
        scheduler does not yet consider known, cleaning stale heap entries
        (completed, squashed or truncated stores) on the way."""
        heap = self.unknown_stores
        while heap:
            store = heap[0][1]
            state = store.state
            if store.addr_known or state == S_DONE or state == S_SQUASHED:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None

    def _youngest_older_matching_store(self, load: InFlight) -> Optional[InFlight]:
        bucket = self.store_map.get(load.mem_addr)
        if not bucket:
            return None
        # Prune departed (committed/squashed) stores off the tail while
        # they are youngest; interior dead entries are skipped below and
        # become prunable once everything younger has departed too.
        while bucket:
            store = bucket[-1]
            if store.sq_live and store.state != S_SQUASHED:
                break
            bucket.pop()
        seq = load.seq
        for store in reversed(bucket):
            if store.seq < seq and store.sq_live and store.state != S_SQUASHED:
                return store
        return None

    def _try_schedule_load(self, load: InFlight) -> Optional[int]:
        """Memory scheduling for a load; returns latency or None if blocked."""
        if not self._perfect_disamb:
            oldest_unknown = self._oldest_unknown_store_seq()
            if oldest_unknown is not None and oldest_unknown < load.seq:
                load.state = S_MEM_BLOCKED
                self.blocked_loads.append(load)
                return None
        match = self._youngest_older_matching_store(load)
        if match is not None:
            if match.state != S_DONE:
                load.state = S_MEM_BLOCKED
                self._mem_waiters.setdefault(match.seq, []).append(load)
                return None
            self.result.load_forwards += 1
            return 1
        self.result.dcache_accesses += 1
        return self._data_latency(load.mem_addr)

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, width: int) -> None:
        """Rename, functionally execute, and window up to ``width``
        instructions.

        The wiring and instruction semantics of :meth:`_wire_and_execute`
        are inlined into the loop body: this code runs once per fetched
        instruction (wrong path included) and no recovery can interleave
        with the dispatch stage, so the speculative-state bindings hoisted
        above the loop are stable for the whole call.
        """
        dispatched = 0
        checkpoints_this_cycle = 0
        queue = self.dispatch_queue
        n_fus = self._n_fus
        rs_per_fu = self._rs_per_fu
        cp_budget = self._cp_budget
        cp_per_cycle = self._cp_per_cycle
        rs_count = self.rs_count
        rob_append = self.rob.append
        cycle = self.cycle
        regs = self.spec_regs
        rename = self.rename
        store_queue = self.store_queue
        load_queue = self.load_queue
        store_map_get = self.store_map.get
        store_map = self.store_map
        memory_get = self.memory_image.get
        ready_heaps = self.ready_heaps
        unknown_stores = self.unknown_stores
        track_unknown = not self._perfect_disamb
        heappush = heapq.heappush
        ready_total = self.ready_total
        while queue and dispatched < width:
            rec = queue[0]
            fu = rec.seq % n_fus
            if rs_count[fu] >= rs_per_fu:
                break  # window full
            # A checkpoint accompanies every fetch-block boundary: each
            # dynamically predicted branch and the end of each fetch
            # (pre-resolved on the record as ``cp_need``).
            active = rec.is_active
            needs_cp = active and rec.cp_need
            if needs_cp and (
                len(self.checkpoints) >= cp_budget
                or checkpoints_this_cycle > cp_per_cycle
            ):
                break  # out of checkpoint resources; resume next cycle
            queue.popleft()
            rec.fu = fu
            rs_count[fu] += 1
            rob_append(rec)
            rec.dispatch_cycle = cycle
            dispatched += 1
            if not active:
                rec.state = S_DORMANT
                continue

            inst = rec.inst
            pending = 0
            for reg in inst._srcs:
                producer = rename[reg]
                if producer is not None:
                    pstate = producer.state
                    if pstate != S_DONE and pstate != S_SQUASHED:
                        pending += 1
                        pdeps = producer.dependents
                        if pdeps is None:
                            producer.dependents = [rec]
                        else:
                            pdeps.append(rec)
            rec.pending_srcs = pending

            # The opcode chain is ordered by dynamic frequency in the
            # paper workloads (ANDI/ADDI/LD/ADD alone cover ~60% of the
            # dispatch stream), not by opcode-table order.
            op = inst.op
            next_pc = inst.addr + 1
            taken = None
            mem_addr = None
            value = None
            dest = None
            if op is _ANDI:
                value = regs[inst.rs1] & (inst.imm & _MASK)
                dest = inst._dest
            elif op is _ADDI:
                value = (regs[inst.rs1] + inst.imm) & _MASK
                dest = inst._dest
            elif op is _ADD:
                value = (regs[inst.rs1] + regs[inst.rs2]) & _MASK
                dest = inst._dest
            elif op is _LD:
                mem_addr = (regs[inst.rs1] + inst.imm) & _MASK
                # Youngest live store to the address forwards its data
                # (committed stores fall through to the memory image,
                # which their commit already updated — same value the
                # full-queue scan used to find).
                bucket = store_map_get(mem_addr)
                if bucket:
                    while bucket:
                        store = bucket[-1]
                        if store.sq_live and store.state != S_SQUASHED:
                            value = store.value & _MASK
                            break
                        bucket.pop()
                if value is None:
                    value = memory_get(mem_addr, 0) & _MASK
                dest = inst._dest
            elif op is _BNE:
                taken = regs[inst.rs1] != regs[inst.rs2]
                if taken:
                    next_pc = inst.target
            elif op is _BEQ:
                taken = regs[inst.rs1] == regs[inst.rs2]
                if taken:
                    next_pc = inst.target
            elif op is _ST:
                mem_addr = (regs[inst.rs1] + inst.imm) & _MASK
                value = regs[inst.rs2] & _MASK
            elif op is _MUL:
                value = (regs[inst.rs1] * regs[inst.rs2]) & _MASK
                dest = inst._dest
            elif op is _AND:
                value = regs[inst.rs1] & regs[inst.rs2]
                dest = inst._dest
            elif op is _XOR:
                value = regs[inst.rs1] ^ regs[inst.rs2]
                dest = inst._dest
            elif op is _SUB:
                value = (regs[inst.rs1] - regs[inst.rs2]) & _MASK
                dest = inst._dest
            elif op is _SLTI:
                a = regs[inst.rs1]
                value = 1 if (a - _TWO64 if a & _SIGN_BIT else a) < inst.imm else 0
                dest = inst._dest
            elif op is _OR:
                value = regs[inst.rs1] | regs[inst.rs2]
                dest = inst._dest
            elif op is _BLT:
                a = regs[inst.rs1]
                b = regs[inst.rs2]
                taken = (a - _TWO64 if a & _SIGN_BIT else a) \
                    < (b - _TWO64 if b & _SIGN_BIT else b)
                if taken:
                    next_pc = inst.target
            elif op is _BGE:
                a = regs[inst.rs1]
                b = regs[inst.rs2]
                taken = (a - _TWO64 if a & _SIGN_BIT else a) \
                    >= (b - _TWO64 if b & _SIGN_BIT else b)
                if taken:
                    next_pc = inst.target
            elif op is _SHL:
                value = (regs[inst.rs1] << (regs[inst.rs2] & 63)) & _MASK
                dest = inst._dest
            elif op is _SHR:
                value = (regs[inst.rs1] & _MASK) >> (regs[inst.rs2] & 63)
                dest = inst._dest
            elif op is _SLT:
                a = regs[inst.rs1]
                b = regs[inst.rs2]
                value = 1 if (a - _TWO64 if a & _SIGN_BIT else a) \
                    < (b - _TWO64 if b & _SIGN_BIT else b) else 0
                dest = inst._dest
            elif op is _ORI:
                value = regs[inst.rs1] | (inst.imm & _MASK)
                dest = inst._dest
            elif op is _XORI:
                value = regs[inst.rs1] ^ (inst.imm & _MASK)
                dest = inst._dest
            elif op is _LUI:
                value = (inst.imm << 16) & _MASK
                dest = inst._dest
            elif op is _JMP:
                next_pc = inst.target
            elif op is _CALL:
                value = next_pc
                dest = REG_LINK
                next_pc = inst.target
            elif op is _RET:
                next_pc = regs[REG_LINK] & _MASK
            elif op is _JR:
                next_pc = regs[inst.rs1] & _MASK
            elif op is _NOP or op is _TRAP:
                pass
            elif op is _HALT:
                next_pc = inst.addr
            else:  # pragma: no cover - exhaustive over the opcode set
                raise NotImplementedError(op)

            rec.next_pc = next_pc
            rec.taken = taken
            rec.mem_addr = mem_addr
            rec.value = value
            rec.dest = dest
            if dest is not None:
                regs[dest] = value
                rename[dest] = rec
            if op is _ST:
                store_queue.append(rec)
                rec.sq_live = True
                bucket = store_map_get(mem_addr)
                if bucket is None:
                    store_map[mem_addr] = [rec]
                else:
                    bucket.append(rec)
                if track_unknown:
                    heappush(unknown_stores, (rec.seq, rec))
            elif op is _LD:
                load_queue.append(rec)
            if pending == 0:
                rec.state = S_READY
                ready_total += 1
                heappush(ready_heaps[fu], (rec.seq, rec))
            else:
                rec.state = S_WAITING

            if needs_cp:
                self._checkpoint_for(rec)
                checkpoints_this_cycle += 1
        self.ready_total = ready_total

    def _wire_and_execute(self, rec: InFlight) -> None:
        """Rename, functionally execute, and queue one instruction.

        The instruction semantics are inlined (same frequency-ordered
        chain as the shared executor's ``step_instruction``) because this
        runs once per dispatched instruction — wrong path included — and
        the call/ExecResult overhead dominated dispatch in profiles.
        Source wiring uses the instruction's precomputed ``_srcs``/``_dest``
        so no dataflow is re-derived here.
        """
        inst = rec.inst
        rename = self.rename
        pending = 0
        for reg in inst._srcs:
            producer = rename[reg]
            if producer is not None:
                pstate = producer.state
                if pstate != S_DONE and pstate != S_SQUASHED:
                    pending += 1
                    pdeps = producer.dependents
                    if pdeps is None:
                        producer.dependents = [rec]
                    else:
                        pdeps.append(rec)
        rec.pending_srcs = pending

        regs = self.spec_regs
        op = inst.op
        next_pc = inst.addr + 1
        taken = None
        mem_addr = None
        value = None
        dest = None
        if op is _ANDI:
            value = regs[inst.rs1] & (inst.imm & _MASK)
            dest = inst._dest
        elif op is _ADDI:
            value = (regs[inst.rs1] + inst.imm) & _MASK
            dest = inst._dest
        elif op is _ADD:
            value = (regs[inst.rs1] + regs[inst.rs2]) & _MASK
            dest = inst._dest
        elif op is _LD:
            mem_addr = (regs[inst.rs1] + inst.imm) & _MASK
            # Speculative read: youngest live store to the address
            # forwards its data, otherwise the dispatch-order memory image.
            bucket = self.store_map.get(mem_addr)
            if bucket:
                while bucket:
                    store = bucket[-1]
                    if store.sq_live and store.state != S_SQUASHED:
                        value = store.value & _MASK
                        break
                    bucket.pop()
            if value is None:
                value = self.memory_image.get(mem_addr, 0) & _MASK
            dest = inst._dest
        elif op is _BNE:
            taken = regs[inst.rs1] != regs[inst.rs2]
            if taken:
                next_pc = inst.target
        elif op is _BEQ:
            taken = regs[inst.rs1] == regs[inst.rs2]
            if taken:
                next_pc = inst.target
        elif op is _ST:
            mem_addr = (regs[inst.rs1] + inst.imm) & _MASK
            value = regs[inst.rs2] & _MASK
        elif op is _MUL:
            value = (regs[inst.rs1] * regs[inst.rs2]) & _MASK
            dest = inst._dest
        elif op is _AND:
            value = regs[inst.rs1] & regs[inst.rs2]
            dest = inst._dest
        elif op is _XOR:
            value = regs[inst.rs1] ^ regs[inst.rs2]
            dest = inst._dest
        elif op is _SUB:
            value = (regs[inst.rs1] - regs[inst.rs2]) & _MASK
            dest = inst._dest
        elif op is _SLTI:
            a = regs[inst.rs1]
            value = 1 if (a - _TWO64 if a & _SIGN_BIT else a) < inst.imm else 0
            dest = inst._dest
        elif op is _OR:
            value = regs[inst.rs1] | regs[inst.rs2]
            dest = inst._dest
        elif op is _BLT:
            a = regs[inst.rs1]
            b = regs[inst.rs2]
            taken = (a - _TWO64 if a & _SIGN_BIT else a) \
                < (b - _TWO64 if b & _SIGN_BIT else b)
            if taken:
                next_pc = inst.target
        elif op is _BGE:
            a = regs[inst.rs1]
            b = regs[inst.rs2]
            taken = (a - _TWO64 if a & _SIGN_BIT else a) \
                >= (b - _TWO64 if b & _SIGN_BIT else b)
            if taken:
                next_pc = inst.target
        elif op is _SHL:
            value = (regs[inst.rs1] << (regs[inst.rs2] & 63)) & _MASK
            dest = inst._dest
        elif op is _SHR:
            value = (regs[inst.rs1] & _MASK) >> (regs[inst.rs2] & 63)
            dest = inst._dest
        elif op is _SLT:
            a = regs[inst.rs1]
            b = regs[inst.rs2]
            value = 1 if (a - _TWO64 if a & _SIGN_BIT else a) \
                < (b - _TWO64 if b & _SIGN_BIT else b) else 0
            dest = inst._dest
        elif op is _ORI:
            value = regs[inst.rs1] | (inst.imm & _MASK)
            dest = inst._dest
        elif op is _XORI:
            value = regs[inst.rs1] ^ (inst.imm & _MASK)
            dest = inst._dest
        elif op is _LUI:
            value = (inst.imm << 16) & _MASK
            dest = inst._dest
        elif op is _JMP:
            next_pc = inst.target
        elif op is _CALL:
            value = next_pc
            dest = REG_LINK
            next_pc = inst.target
        elif op is _RET:
            next_pc = regs[REG_LINK] & _MASK
        elif op is _JR:
            next_pc = regs[inst.rs1] & _MASK
        elif op is _NOP or op is _TRAP:
            pass
        elif op is _HALT:
            next_pc = inst.addr
        else:  # pragma: no cover - exhaustive over the opcode set
            raise NotImplementedError(op)

        rec.next_pc = next_pc
        rec.taken = taken
        rec.mem_addr = mem_addr
        rec.value = value
        rec.dest = dest
        if dest is not None:
            regs[dest] = value
            rename[dest] = rec
        if op is _ST:
            self.store_queue.append(rec)
            rec.sq_live = True
            bucket = self.store_map.get(mem_addr)
            if bucket is None:
                self.store_map[mem_addr] = [rec]
            else:
                bucket.append(rec)
            if not self._perfect_disamb:
                heapq.heappush(self.unknown_stores, (rec.seq, rec))
        elif op is _LD:
            self.load_queue.append(rec)
        if pending == 0:
            rec.state = S_READY
            self.ready_total += 1
            heapq.heappush(self.ready_heaps[rec.fu], (rec.seq, rec))
        else:
            rec.state = S_WAITING

    def _checkpoint_for(self, rec: InFlight) -> None:
        if rec.cp_snapshot is not None:
            ghr_before, ras_state = rec.cp_snapshot
        else:
            ghr_before = self.engine.ghr.value
            ras_state = self.engine.ras.snapshot()
        if rec.inst.op.is_cond_branch and rec.predicted_taken is not None:
            resume_pc = rec.inst.target if rec.predicted_taken else rec.inst.fall_through
        elif rec.inst.op.is_cond_branch and rec.static_dir is not None:
            # Promoted branch: its static prediction is the fetched path.
            resume_pc = rec.inst.target if rec.static_dir else rec.inst.fall_through
        elif rec.predicted_next is not None:
            resume_pc = rec.predicted_next
        else:
            resume_pc = rec.inst.fall_through
        cp = Checkpoint(
            regs=list(self.spec_regs),
            rename=list(self.rename),
            ghr_before=ghr_before,
            ras_state=ras_state,
            sq_len=len(self.store_queue),
            lq_len=len(self.load_queue),
            seq=rec.seq,
            resume_pc=resume_pc,
        )
        rec.checkpoint = cp
        self.checkpoints.append((rec.seq, cp))

    # ----------------------------------------------------------------- fetch

    def _fetch(self) -> None:
        if self.halted:
            return
        if self.trap_pending is not None:
            self.acc_traps += 1
            return
        if self.misfetch_waiting is not None:
            self.acc_misfetch += 1
            return
        if self.redirect_bubble > 0:
            self.redirect_bubble -= 1
            self.acc_branch_miss += 1
            return
        if self.icache_stall > 0:
            self.icache_stall -= 1
            self.acc_cache_miss += 1
            if self.icache_stall == 0 and self.pending_fetch is not None:
                result, group = self.pending_fetch
                self.pending_fetch = None
                self._enqueue_fetch(result, group)
            return
        if self.dispatch_queue:
            self.acc_full_window += 1
            return

        result = self.engine.fetch(self.pc)
        if not result.active:
            # Wrong-path fetch ran off the code image; spin until repair.
            self.acc_branch_miss += 1
            return
        self.fetch_id += 1
        group = FetchGroup(self.fetch_id, self.cycle)
        self.result.fetches += 1
        if result.stall_cycles > 0:
            self.icache_stall = result.stall_cycles
            self.pending_fetch = (result, group)
            self.acc_cache_miss += 1
            return
        self._fetch_cycle_groups.append((self.cycle, group))
        self._enqueue_fetch(result, group)

    def _enqueue_fetch(self, result: FetchResult, group: FetchGroup) -> None:
        records: List[InFlight] = []
        append = records.append
        seq = self.seq
        fetch_cycle = group.cycle
        # Prediction records attach in order to the dynamic branches.
        rec_iter = iter(result.pred_records)
        active_dirs = result.active_dirs
        active_promoted = result.active_promoted
        snapshot_get = result.control_snapshots.get
        for idx, inst in enumerate(result.active):
            seq += 1
            rec = InFlight(seq, inst, group, fetch_cycle)
            # A non-None fetch direction marks exactly the conditional
            # branches (every engine fills active_dirs that way).
            direction = active_dirs[idx]
            if direction is not None:
                # Each arm fills in ALL the branch-metadata slots the
                # constructor leaves unset (reads are branch-gated).
                if active_promoted[idx]:
                    rec.promoted = True
                    rec.static_dir = direction
                    rec.predicted_taken = None
                else:
                    rec.promoted = False
                    rec.predicted_taken = direction
                    rec.cp_need = True
                    rec.pred_record = next(rec_iter, None)
                snapshot = snapshot_get(idx)
                if snapshot is not None:
                    rec.cp_snapshot = snapshot
            append(rec)
        # Attach the end-of-fetch bookkeeping to the last instruction: the
        # fetch's predicted successor doubles as the final block boundary's
        # checkpoint resume point, and for indirect jumps/returns it is the
        # target to verify at execute.
        last = records[-1]
        if result.next_pc is not None:
            last.predicted_next = result.next_pc
            last.cp_need = True
        dormant: List[InFlight] = []
        if result.inactive:
            inactive_dirs = result.inactive_dirs
            for idx, inst in enumerate(result.inactive):
                seq += 1
                drec = InFlight(seq, inst, group, fetch_cycle)
                drec.is_active = False
                if inactive_dirs[idx] is not None:
                    drec.static_dir = inactive_dirs[idx]
                    drec.promoted = result.inactive_promoted[idx]
                    drec.predicted_taken = None
                    drec.pred_record = None
                    drec.cp_need = not drec.promoted
                dormant.append(drec)
            last.inactive_buffer = dormant
            self.result.inactive_issued += len(dormant)
        self.seq = seq
        self.dispatch_queue.extend(records)
        self.dispatch_queue.extend(dormant)
        if result.ends_with_trap:
            for rec in records:
                if rec.inst.op.opclass is OpClass.TRAP:
                    self.trap_pending = rec.seq
                    break
        if result.next_pc is None:
            self.misfetch_waiting = last.seq
        else:
            self.pc = result.next_pc

    # ---------------------------------------------------------------- finish

    def _finish(self) -> MachineResult:
        result = self.result
        result.cycles = self.cycle
        accounting = result.cycle_accounting
        if self.acc_traps:
            accounting[CycleCategory.TRAPS] += self.acc_traps
        if self.acc_misfetch:
            accounting[CycleCategory.MISFETCHES] += self.acc_misfetch
        if self.acc_branch_miss:
            accounting[CycleCategory.BRANCH_MISSES] += self.acc_branch_miss
        if self.acc_cache_miss:
            accounting[CycleCategory.CACHE_MISSES] += self.acc_cache_miss
        if self.acc_full_window:
            accounting[CycleCategory.FULL_WINDOW] += self.acc_full_window
        # Deferred classification of fetch cycles: useful vs wrong-path.
        for _cycle, group in self._fetch_cycle_groups:
            if group.retired_any:
                accounting[CycleCategory.USEFUL_FETCH] += 1
            else:
                accounting[CycleCategory.BRANCH_MISSES] += 1
        if self.fill_unit is not None:
            self.fill_unit.flush()
            result.fill_reasons = dict(self.fill_unit.finalize_reasons)
            if self.fill_unit.bias_table is not None:
                result.promotions = self.fill_unit.bias_table.promotions
                result.demotions = self.fill_unit.bias_table.demotions
        trace_cache = getattr(self.engine, "trace_cache", None)
        if trace_cache is not None:
            result.tc_hits = trace_cache.stats.hits
            result.tc_misses = trace_cache.stats.misses
        result.l1i_misses = self.engine.memory.l1i.stats.misses
        return result


def simulate(program: Program, config: MachineConfig,
             max_instructions: Optional[int] = 100_000) -> MachineResult:
    """Convenience wrapper: build a machine, run it, return the result."""
    return Machine(program, config, max_instructions=max_instructions).run()
