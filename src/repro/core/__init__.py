"""The out-of-order execution core and full-machine simulator.

Models the paper's execution engine: a 4-stage pipeline (fetch, issue,
schedule, execute — plus in-order retire), 16 universal function units
each fed by a 64-entry reservation station ("node table"), checkpoint
repair for branch misprediction and promoted-branch fault recovery (up to
three checkpoints per cycle, one per fetch block), a memory scheduler that
either refuses to let loads bypass stores with unknown addresses
(conservative — the paper's base engine) or speculates all memory
dependences perfectly (the paper's "ideal, aggressive" engine of
Figure 16), and execution-driven wrong-path modeling: the machine really
fetches, renames and executes down mispredicted paths until branches
resolve.
"""

from repro.core.inflight import InFlight, Checkpoint, InstState
from repro.core.machine import Machine, MachineResult

__all__ = ["InFlight", "Checkpoint", "InstState", "Machine", "MachineResult"]
