"""The full-machine, cycle-level simulator on flat array state.

Pipeline per cycle (processed in reverse order so stages are pipelined):

1. **retire** — in-order commit of up to 16 instructions: stores write the
   committed memory image, the fill unit and bias table consume the retired
   stream, and branch predictors train.
2. **complete** — instructions finishing execution this cycle wake their
   dependents; branches verify their predictions and trigger checkpoint
   repair on a misprediction, promoted-branch fault, or wrong indirect
   target.
3. **schedule** — each of the 16 universal function units issues its oldest
   ready instruction; loads additionally pass the memory scheduler
   (conservative: every older store's address must be known; perfect:
   oracle dependences only) with store-queue forwarding.
4. **dispatch** — up to 16 instructions rename, allocate reservation-station
   slots, *functionally execute* against the speculative state (so
   wrong-path instructions run real semantics), and take checkpoints at
   fetch-block boundaries (up to 3/cycle).
5. **fetch** — the front end supplies the next trace segment or icache
   block along the predicted path, stalling for traps, full windows,
   icache misses, unknown indirect targets, or recovery bubbles.

Inactive issue: when a trace line partially matches the prediction, its
remainder is dispatched *dormant* — occupying window slots but not
executing.  If the diverging branch resolves against its prediction the
dormant instructions activate immediately (zero refetch penalty); otherwise
they squash.

Array-backed in-flight state (this module's third-generation layout; the
object-per-instruction predecessors are frozen in
:mod:`repro.core.machine_reference` and :mod:`repro.core.machine_event`):

* Every in-flight instruction lives in a **circular window slot**
  ``seq & (WINDOW - 1)`` of a set of preallocated parallel columns
  (``bytearray`` for small enums/flags, plain lists for objects), so the
  per-instruction record allocation and attribute traffic of the previous
  cores disappears.  All cross-references — rename table, store map,
  completion buckets, ready heaps, dependence lists, memory-scheduler
  structures — hold plain sequence numbers; a stale reference is detected
  by ``c_seq[seq & MASK] != seq`` (the slot was recycled after the record
  departed) and treated exactly as the old cores treated a departed
  record.  A per-fetch span check guarantees no *live* record's slot is
  ever recycled.
* Instruction semantics are pre-decoded once per static instruction into a
  **decode row** ``(kind, a, b, c, srcs, next_pc, code)``; the dispatch
  stage interprets rows with an integer-keyed chain instead of re-reading
  opcode objects and operand attributes per dynamic instance.
* Trace fetches replay **compiled machine plans**: per
  :class:`~repro.frontend.fetch.CompiledVariant`, the enqueue metadata of
  every slot (decode row, direction, promotion, prediction-record fields,
  and the (GHR, RAS) checkpoint snapshot *reconstruction* offsets) is
  memoized on first use, so steady-state fetches enter the window without
  touching per-instruction front-end state.  Snapshot capture is switched
  off on the engine — the fast variant fetch path stays unlocked — and
  the per-branch (GHR, RAS) snapshots the repair machinery needs are
  reconstructed arithmetically from the fetch-entry values plus the
  variant's batched GHR bits and RAS pushes.  Fetches that cannot be
  reconstructed (pending promoted-fault overrides) temporarily re-enable
  capture and take the frozen slow path, byte-identical to the reference.

The event-driven cycle loop of the previous generation is preserved:
completions live in a wheel keyed by finish cycle, readiness is a counter,
and provably-idle stall stretches are skipped in one batch.
"""

from __future__ import annotations

import gc
import heapq
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig
from repro.core import memo
from repro.core.inflight import (
    Checkpoint, FetchGroup,
    S_DORMANT, S_WAITING, S_READY, S_MEM_BLOCKED, S_EXECUTING, S_DONE, S_SQUASHED,
)
from repro.frontend.build import build_engine
from repro.frontend.fetch import (
    FetchResult, ICacheFetchEngine, PredRecord, TraceFetchEngine,
)
from repro.frontend.stats import CycleCategory
from repro.isa.executor import STACK_BASE
from repro.isa.instruction import NUM_REGS, REG_LINK, REG_SP
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program

#: Extra recovery cycles charged when a promoted branch faults: the machine
#: backs up to the previous checkpoint rather than the branch itself.
FAULT_EXTRA_PENALTY = 2

#: Pipeline bubble between a recovery and the first redirected fetch.
REDIRECT_BUBBLE = 1

_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63
_TWO64 = 1 << 64

#: Circular window capacity (slots).  Must exceed the maximum live span of
#: sequence numbers (ROB + dispatch queue + one fetch); the enqueue stage
#: checks the span per fetch and refuses to recycle a live slot.
WINDOW = 8192
W_MASK = WINDOW - 1

#: Shared per-length reset templates for the enqueue slices (slice
#: assignment copies, so reuse across fetches is safe).
_RESET_TMPL: dict = {}

# Quiescent-stretch stall regimes (priority order of the fetch stage).
_R_TRAP = 0
_R_MISFETCH = 1
_R_BUBBLE = 2
_R_ICACHE = 3
_R_FULL_WINDOW = 4

# Decode-row kinds, ordered by dynamic frequency in the paper workloads
# (ANDI/ADDI/ADD/LD alone cover ~60% of the dispatch stream) so the
# dispatch interpreter's if/elif chain matches early for the common ops.
_K_ANDI = 1
_K_ADDI = 2
_K_ADD = 3
_K_LD = 4
_K_BNE = 5
_K_BEQ = 6
_K_ST = 7
_K_MUL = 8
_K_AND = 9
_K_XOR = 10
_K_SUB = 11
_K_SLTI = 12
_K_OR = 13
_K_BLT = 14
_K_BGE = 15
_K_SHL = 16
_K_SHR = 17
_K_SLT = 18
_K_ORI = 19
_K_XORI = 20
_K_LUI = 21
_K_CONST = 22   # next_pc precomputed, no operands: NOP, TRAP, JMP, HALT
_K_CALL = 23
_K_RET = 24
_K_JR = 25

_ROW_KIND = {
    Opcode.ANDI: _K_ANDI, Opcode.ADDI: _K_ADDI, Opcode.ADD: _K_ADD,
    Opcode.LD: _K_LD, Opcode.BNE: _K_BNE, Opcode.BEQ: _K_BEQ,
    Opcode.ST: _K_ST, Opcode.MUL: _K_MUL, Opcode.AND: _K_AND,
    Opcode.XOR: _K_XOR, Opcode.SUB: _K_SUB, Opcode.SLTI: _K_SLTI,
    Opcode.OR: _K_OR, Opcode.BLT: _K_BLT, Opcode.BGE: _K_BGE,
    Opcode.SHL: _K_SHL, Opcode.SHR: _K_SHR, Opcode.SLT: _K_SLT,
    Opcode.ORI: _K_ORI, Opcode.XORI: _K_XORI, Opcode.LUI: _K_LUI,
    Opcode.NOP: _K_CONST, Opcode.TRAP: _K_CONST, Opcode.JMP: _K_CONST,
    Opcode.HALT: _K_CONST, Opcode.CALL: _K_CALL, Opcode.RET: _K_RET,
    Opcode.JR: _K_JR,
}

_REG3 = frozenset((_K_ADD, _K_MUL, _K_AND, _K_XOR, _K_SUB, _K_OR,
                   _K_SHL, _K_SHR, _K_SLT))
_IMM_MASKED = frozenset((_K_ANDI, _K_ORI, _K_XORI))
_IMM_RAW = frozenset((_K_ADDI, _K_LD, _K_SLTI))
_BRANCHES = frozenset((_K_BNE, _K_BEQ, _K_BLT, _K_BGE))
#: Kinds whose row ``c`` field is a destination register.
_DESTFUL = frozenset((_K_ANDI, _K_ADDI, _K_ADD, _K_LD, _K_MUL, _K_AND,
                      _K_XOR, _K_SUB, _K_SLTI, _K_OR, _K_SHL, _K_SHR,
                      _K_SLT, _K_ORI, _K_XORI, _K_LUI))


def _decode_row(inst) -> tuple:
    """Pre-decode one static instruction into an interpreter row.

    ``(kind, a, b, c, srcs, next_pc, code, dest)`` — operand fields
    resolved so the dispatch interpreter never touches the instruction
    object, the fall-through/constant successor precomputed, ``code`` the
    opcode's commit code (doubling as the scheduler's latency class), and
    ``dest`` the destination register (``None`` for ops without one — the
    commit and window-replay walks gate their value reads on it).
    """
    op = inst.op
    kind = _ROW_KIND[op]
    addr = inst.addr
    npc = addr + 1
    a = b = c = 0
    if kind in _REG3:
        a = inst.rs1; b = inst.rs2; c = inst._dest
    elif kind in _IMM_RAW:
        a = inst.rs1; b = inst.imm; c = inst._dest
    elif kind in _BRANCHES:
        a = inst.rs1; b = inst.rs2; c = inst.target
    elif kind == _K_ST:
        a = inst.rs1; b = inst.imm; c = inst.rs2
    elif kind in _IMM_MASKED:
        a = inst.rs1; b = inst.imm & _MASK; c = inst._dest
    elif kind == _K_LUI:
        b = (inst.imm << 16) & _MASK; c = inst._dest
    elif kind == _K_CONST:
        if op is Opcode.JMP:
            npc = inst.target
        elif op is Opcode.HALT:
            npc = addr
    elif kind == _K_CALL:
        b = npc          # link value (fall-through)
        npc = inst.target
    elif kind == _K_JR:
        a = inst.rs1
    if kind in _DESTFUL:
        dest = c
    elif kind == _K_CALL:
        dest = REG_LINK
    else:
        dest = None
    return (kind, a, b, c, inst._srcs, npc, op.commit_code, dest)


def _compile_machine_plan(variant, segment, rows: dict) -> tuple:
    """Build the machine core's enqueue plan for one compiled variant.

    Replays the segment's fetch-plan *events* once (exactly the walk
    ``compile_variant`` performed, cut at the same diverging branch) to
    recover, per branch position, how many GHR pushes and RAS pushes
    precede it — enough to reconstruct the (GHR, RAS) checkpoint snapshot
    the reference capture walk would have taken, from the fetch-entry
    values alone.

    Returns ``(n_act, all_insts, all_rows, all_codes, act_flags,
    act_branches, inact_branches, trap_off)``.  The ``all_*`` lists span
    active followed by inactive instructions and are shaped for direct
    column *slice assignment* — the enqueue stage writes each column once
    per fetch at C speed instead of once per instruction.  Branch
    metadata is sparse: ``act_branches`` holds ``(pos, direction,
    promoted, baddr, dyn_i, jshift, prefix, rpre)`` per active branch
    (for a dynamic branch, ``(baddr, dyn_i)`` rebuild its ``PredRecord``
    from the per-fetch predictor tokens; for any branch, its checkpoint
    snapshot is ``((entry_ghr << jshift) | prefix) & mask`` and
    ``entry_ras (+ rpre)``); ``inact_branches`` holds ``(pos, static_dir,
    promoted, cp_need)`` per dormant branch, positions offset past the
    active block.  ``trap_off`` is the active index of the trap when the
    variant ends with one, else -1.
    """
    events = segment.fetch_plan()[0]
    key = variant.key
    branch_meta = {}
    j = 0
    p = 0
    dyn_index = 0
    for kind, pos, payload in events:
        if kind == 0:
            p += 1
            continue
        branch_meta[pos] = (j, p)
        j += 1
        if kind == 2:
            predicted = bool((key >> dyn_index) & 1)
            dyn_index += 1
            if predicted != payload[0]:
                break
    ghr_bits = variant.ghr_bits
    ghr_count = variant.ghr_count
    ras_pushes = variant.ras_pushes
    dirs = variant.dirs
    promoted_flags = variant.promoted
    n_act = len(variant.active)
    all_insts = list(variant.active) + list(variant.inactive)
    all_rows = []
    for inst in all_insts:
        row = rows.get(id(inst))
        if row is None:
            row = _decode_row(inst)
            rows[id(inst)] = row
        all_rows.append(row)
    all_codes = [row[6] for row in all_rows]
    act_flags = [1] * n_act + [0] * len(variant.inactive)
    act_branches = []
    dyn_i = 0
    for pos in range(n_act):
        d = dirs[pos]
        if d is None:
            continue
        jshift, pp = branch_meta[pos]
        prefix = ghr_bits >> (ghr_count - jshift)
        rpre = tuple(ras_pushes[:pp]) if pp else None
        if promoted_flags[pos]:
            act_branches.append((pos, d, True, 0, 0, jshift, prefix, rpre))
        else:
            act_branches.append((pos, d, False, all_insts[pos].addr, dyn_i,
                                 jshift, prefix, rpre))
            dyn_i += 1
    inact_branches = []
    inactive_dirs = variant.inactive_dirs
    inactive_promoted = variant.inactive_promoted
    for k in range(len(variant.inactive)):
        sdir = inactive_dirs[k]
        if sdir is None:
            continue
        prom = inactive_promoted[k]
        inact_branches.append((n_act + k, sdir, prom, 0 if prom else 1))
    trap_off = -1
    if variant.ends_with_trap:
        for pos in range(n_act):
            if all_insts[pos].op.opclass is OpClass.TRAP:
                trap_off = pos
                break
    return (n_act, all_insts, all_rows, all_codes, act_flags,
            act_branches, inact_branches, trap_off)


@dataclass
class MachineResult:
    """End-to-end statistics of one machine run."""

    benchmark: str
    config: MachineConfig
    cycles: int = 0
    retired: int = 0
    fetches: int = 0
    cycle_accounting: Counter = field(default_factory=Counter)
    # branches (retired, correct-path only)
    cond_branches: int = 0
    promoted_branches: int = 0
    cond_mispredicts: int = 0
    promoted_faults: int = 0
    indirect_jumps: int = 0
    indirect_mispredicts: int = 0
    # resolution times of mispredicted branches (fetch -> redirect)
    resolution_time_sum: int = 0
    resolution_count: int = 0
    # memory behaviour
    load_forwards: int = 0
    dcache_accesses: int = 0
    # inactive issue
    inactive_issued: int = 0       # instructions issued dormant
    dormant_activations: int = 0   # dormant instructions activated by recovery
    # structures
    tc_hits: int = 0
    tc_misses: int = 0
    l1i_misses: int = 0
    promotions: int = 0
    demotions: int = 0
    fill_reasons: dict = field(default_factory=dict)
    # Timing-memo accounting (None when the memo layer is off).  Excluded
    # from comparison and from serialization so memo-on and memo-off
    # results stay byte-identical.
    memo_stats: Optional[dict] = field(default=None, compare=False, repr=False)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def total_mispredicted_branches(self) -> int:
        return self.cond_mispredicts + self.promoted_faults + self.indirect_mispredicts

    @property
    def avg_resolution_time(self) -> float:
        if not self.resolution_count:
            return 0.0
        return self.resolution_time_sum / self.resolution_count

    @property
    def mispredict_lost_cycles(self) -> int:
        return self.cycle_accounting[CycleCategory.BRANCH_MISSES]


class Machine:
    """One configured machine bound to one program."""

    def __init__(self, program: Program, config: MachineConfig,
                 max_instructions: Optional[int] = 100_000, engine=None,
                 memo_table=None):
        self.program = program
        self.config = config
        self.max_instructions = max_instructions
        if engine is None:
            engine = build_engine(program, config.frontend, memory_config=config.memory)
        else:
            # A functionally warmed engine: predictors, caches and bias
            # table stay trained, but the speculative fetch state must
            # match a machine starting at the program entry.
            engine.restore((0, ()))
        self.engine = engine
        # The core repairs from per-branch (GHR, RAS) checkpoints.  On the
        # fast engines these are *reconstructed* from fetch-entry state and
        # the compiled variant's batched GHR/RAS metadata, so snapshot
        # capture stays off and the compiled-variant fetch path stays
        # unlocked; any other engine falls back to capture-on generic
        # fetches (the frozen reference behaviour).
        fast_fetch = isinstance(engine, (TraceFetchEngine, ICacheFetchEngine))
        self._fast_fetch = fast_fetch
        engine.capture_snapshots = not fast_fetch
        self._overrides = (getattr(engine, "_fault_overrides", None)
                           if fast_fetch else None)
        self.fill_unit = getattr(self.engine, "fill_unit", None)
        core = config.core

        # Speculative architectural state (dispatch-order functional
        # execution).  The rename table holds producer *sequence numbers*
        # (0 = no in-flight producer).
        self.spec_regs = [0] * NUM_REGS
        self.spec_regs[REG_SP] = STACK_BASE
        self.memory_image: Dict[int, int] = dict(program.data)
        self.rename: List[int] = [0] * NUM_REGS
        self.store_queue: List[int] = []
        self.load_queue: List[int] = []
        # Address-indexed view of the store queue: mem_addr -> store seqs
        # in dispatch order.  Entries are filtered on read (slot-validity +
        # ``sq_live``/state) rather than eagerly removed, with dead tails
        # pruned opportunistically.
        self.store_map: Dict[int, List[int]] = {}
        # Committed architectural state, maintained at retire.  Only used to
        # reconstruct speculative state when a recovery has no live
        # checkpoint to restore (rare: promoted fault before any boundary).
        self.arch_regs = list(self.spec_regs)
        self.arch_ghr = 0
        self.arch_ras: List[int] = []

        # The columnar window: parallel arrays indexed by circular slot
        # ``seq & W_MASK``.  ``c_seq`` is the occupancy/validity column —
        # a cross-reference whose seq no longer matches its slot points at
        # a departed record.  Columns mirroring InFlight fields the old
        # constructor left unset (functional results, branch metadata) are
        # likewise only reset when their enqueue arm assigns them; every
        # read is gated the same way the object core's reads were.
        self.c_seq = [0] * WINDOW
        self.c_inst = [None] * WINDOW
        self.c_row = [None] * WINDOW
        self.c_group = [None] * WINDOW
        self.c_state = [0] * WINDOW
        self.c_code = [0] * WINDOW      # commit/latency code
        self.c_pending = [0] * WINDOW        # outstanding source operands
        self.c_deps = [None] * WINDOW        # dependent seqs (lazy list)
        self.c_snap = [None] * WINDOW        # (ghr_before, ras_state)
        self.c_next = [0] * WINDOW           # resolved next pc
        self.c_taken = [None] * WINDOW       # branch outcome (branch-gated)
        self.c_mem = [None] * WINDOW         # memory address
        self.c_value = [None] * WINDOW       # result value
        self.c_predrec = [None] * WINDOW     # PredRecord
        self.c_ptaken = [None] * WINDOW      # dynamic prediction
        self.c_promoted = [0] * WINDOW
        self.c_static = [None] * WINDOW      # embedded static direction
        self.c_prednext = [None] * WINDOW    # predicted indirect successor
        self.c_cp = [None] * WINDOW          # Checkpoint
        self.c_buffer = [None] * WINDOW      # dormant seqs (inactive issue)
        self.c_cpneed = [0] * WINDOW
        self.c_known = [0] * WINDOW     # store address known
        self.c_sqlive = [0] * WINDOW    # store-queue membership
        self.c_fcycle = [0] * WINDOW         # fetch cycle
        self.c_dcycle = [0] * WINDOW         # dispatch cycle (-1 = queued)
        self.c_active = [0] * WINDOW    # active (vs dormant) flag

        # Window structures (all hold sequence numbers).
        self.rob: deque = deque()
        self.rs_count = [0] * core.n_fus
        self.ready_heaps: List[list] = [[] for _ in range(core.n_fus)]
        self.completions: Dict[int, List[int]] = {}
        self.checkpoints: List[Tuple[int, Checkpoint]] = []  # (seq, cp), sorted
        self.blocked_loads: List[int] = []
        # Event bookkeeping: pending completion-bucket cycles (min-heap,
        # one entry per bucket), count of READY-state instructions, and the
        # conservative memory scheduler's heap of store seqs whose
        # addresses the scheduler does not yet consider known.  Both heaps
        # are cleaned lazily.
        self.comp_cycles: List[int] = []
        self.ready_total = 0
        self.unknown_stores: List[int] = []

        # Fetch state.
        self.pc = program.entry
        self.cycle = 0
        self.seq = 0
        self.fetch_id = 0
        self.halted = False
        self.redirect_bubble = 0
        self.icache_stall = 0
        self.pending_fetch: Optional[Tuple[FetchResult, FetchGroup]] = None
        self.dispatch_queue: deque = deque()  # seqs awaiting dispatch slots
        self.trap_pending: Optional[int] = None     # seq of in-flight trap
        self.misfetch_waiting: Optional[int] = None  # seq of unresolved JR
        self.fault_redirect_delay = 0

        self.result = MachineResult(benchmark=program.name, config=config)
        self._fetch_cycle_groups: List[Tuple[int, FetchGroup]] = []
        self._mem_waiters: Dict[int, List[int]] = {}  # store seq -> load seqs
        # Sequence numbers after which the fill unit's pending segment is
        # cut: recoveries re-synchronize filling with fetch alignment, but
        # the cut must land where the *retire* stream reaches the
        # recovered branch, not where the out-of-order resolution happened.
        self._fill_cuts: set = set()

        # Stall-cycle accounting accumulators; folded into the result's
        # Counter once at the end of the run (plain-int increments are much
        # cheaper than enum-keyed Counter updates in the fetch stage, and
        # the quiescent skip adds whole stretches at once).
        self.acc_traps = 0
        self.acc_misfetch = 0
        self.acc_branch_miss = 0
        self.acc_cache_miss = 0
        self.acc_full_window = 0

        # Decode-row cache for the generic (non-variant) enqueue path,
        # keyed by instruction identity (program instructions are static
        # and outlive the machine).
        self._rows: dict = {}

        # Stable per-run bindings for the hot loops.
        self._n_fus = core.n_fus
        self._rs_per_fu = core.rs_per_fu
        # Reserve three checkpoints for dormant activation: an inactive
        # buffer holds at most three dynamic branches and its checkpoints
        # are created during recovery, outside the dispatch stage's budget.
        self._cp_budget = core.max_checkpoints - 3
        self._cp_per_cycle = core.checkpoints_per_cycle
        self._alu_latency = core.alu_latency
        self._mul_latency = core.mul_latency
        self._perfect_disamb = core.perfect_disambiguation
        self._ghr_mask = self.engine.ghr.mask
        self._fill_retire = self.fill_unit.retire if self.fill_unit is not None else None
        self._data_latency = self.engine.memory.data_latency

        # Structural self-checks on the recovery paths, armed at
        # construction when REPRO_VALIDATE enables any validation mode
        # (zero cost when off — the flag gates every call site).
        from repro import validate
        self._validate_state = validate.invariants_armed()

        # Timing memoization (REPRO_MACHINE_MEMO): span replay for
        # recurring (compiled plan, pipeline context) pairs.  Only armed
        # on the fast fetch engines (the memo keys hold compiled
        # variants) and never under validation — the scalar cycle loop
        # stays the reference semantics the lockstep guard compares
        # against.
        if self._fast_fetch and not validate.armed() and memo.enabled():
            self._memo = memo_table if memo_table is not None \
                else memo.default_table()
        else:
            self._memo = None
        self._memo_rec = None            # SpanRecorder of an open span
        self._memo_sig = None            # chained successor signature
        self._max_cycles = 200 * (max_instructions or 100_000)
        self._memo_run_stats = {
            "hits": 0, "misses": 0, "bailouts": 0, "aborts": 0,
            "cycles_fast_forwarded": 0, "instructions_replayed": 0,
        }

    # ------------------------------------------------------------------ run

    def run(self) -> MachineResult:
        core = self.config.core
        max_cycles = 200 * (self.max_instructions or 100_000)
        retire_width = core.retire_width
        issue_width = core.issue_width
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while not self.halted and self.cycle < max_cycles:
                self.cycle += 1
                if self.rob:
                    self._retire(retire_width)
                self._complete()
                if self.ready_total:
                    self._schedule()
                if self.dispatch_queue:
                    self._dispatch(issue_width)
                self._fetch()
                if not self.ready_total and not self.halted:
                    self._skip_quiescent(max_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._finish()

    def _skip_quiescent(self, max_cycles: int) -> None:
        """Jump over cycles in which no pipeline stage can make progress.

        Called at the end of a cycle with nothing in READY state.  If the
        next cycle is provably a pure stall — retire blocked, scheduler
        idle, dispatch blocked (or empty), and the fetch stage charging a
        stall category without touching the front end — then every cycle up
        to the next completion event behaves identically, so the machine
        advances straight there and batches the accounting.
        """
        rob = self.rob
        c_state = self.c_state
        if rob:
            st = c_state[rob[0] & W_MASK]
            if st == S_DONE or st == S_SQUASHED:
                return  # retire would make progress (or clean up) next cycle
        queue = self.dispatch_queue
        if queue:
            head = queue[0]
            hslot = head & W_MASK
            if self.rs_count[head % self._n_fus] < self._rs_per_fu and not (
                self.c_active[hslot] and self.c_cpneed[hslot]
                and len(self.checkpoints) >= self._cp_budget
            ):
                return  # dispatch would place this instruction next cycle
        # Classify the fetch stall, mirroring the fetch stage's priority
        # order.  A cycle whose fetch would actually touch the front end
        # (trace-cache/icache access, off-image wrong-path probe) is never
        # skipped.
        if self.trap_pending is not None:
            regime = _R_TRAP
        elif self.misfetch_waiting is not None:
            regime = _R_MISFETCH
        elif self.redirect_bubble > 0:
            regime = _R_BUBBLE
        elif self.icache_stall > 0:
            regime = _R_ICACHE
        elif queue:
            regime = _R_FULL_WINDOW
        else:
            return
        cycle = self.cycle
        heap = self.comp_cycles
        while heap and heap[0] <= cycle:  # drop drained buckets
            heapq.heappop(heap)
        horizon = heap[0] - 1 if heap else max_cycles
        if regime == _R_BUBBLE:
            bound = cycle + self.redirect_bubble
            if bound < horizon:
                horizon = bound
        elif regime == _R_ICACHE:
            bound = cycle + self.icache_stall
            if bound < horizon:
                horizon = bound
        if horizon > max_cycles:
            horizon = max_cycles
        skipped = horizon - cycle
        if skipped <= 0:
            return
        self.cycle = horizon
        if regime == _R_TRAP:
            self.acc_traps += skipped
        elif regime == _R_MISFETCH:
            self.acc_misfetch += skipped
        elif regime == _R_BUBBLE:
            self.acc_branch_miss += skipped
            self.redirect_bubble -= skipped
        elif regime == _R_ICACHE:
            self.acc_cache_miss += skipped
            self.icache_stall -= skipped
            if self.icache_stall == 0 and self.pending_fetch is not None:
                result, group = self.pending_fetch
                self.pending_fetch = None
                self._enqueue_fetch(result, group)
        else:
            self.acc_full_window += skipped

    # ---------------------------------------------------------------- retire

    def _retire(self, width: int) -> None:
        retired = 0
        rob = self.rob
        popleft = rob.popleft
        c_state = self.c_state
        c_active = self.c_active
        while rob:
            head = rob[0]
            slot = head & W_MASK
            st = c_state[slot]
            if st == S_SQUASHED:
                popleft()
                continue
            if st != S_DONE or not c_active[slot]:
                return
            popleft()
            retired += 1
            self._commit(head, slot)
            if self.halted or retired >= width:
                return

    def _commit(self, seq: int, slot: int) -> None:
        result = self.result
        result.retired += 1
        self.c_group[slot].retired_any = True
        inst = self.c_inst[slot]
        code = self.c_code[slot]
        dest = self.c_row[slot][7]
        taken = self.c_taken[slot] if code == 3 else None
        if dest is not None:
            self.arch_regs[dest] = self.c_value[slot]
        fill_retire = self._fill_retire
        if fill_retire is not None:
            fill_retire(inst, taken)
            if seq in self._fill_cuts:
                self._fill_cuts.discard(seq)
                self.fill_unit.note_recovery()
        if code:
            if code == 1:  # store
                self.memory_image[self.c_mem[slot]] = self.c_value[slot]
                self.c_sqlive[slot] = 0
                if self.store_queue and self.store_queue[0] == seq:
                    self.store_queue.pop(0)
                else:  # pragma: no cover - defensive
                    self.store_queue.remove(seq)
                if self._memo_rec is not None:
                    self._memo_rec.store_pops += 1
            elif code == 2:  # load
                if self.load_queue and self.load_queue[0] == seq:
                    self.load_queue.pop(0)
                elif seq in self.load_queue:
                    self.load_queue.remove(seq)
            elif code == 3:  # conditional branch
                self.arch_ghr = ((self.arch_ghr << 1) | int(taken)) & self._ghr_mask
                if self.c_promoted[slot]:
                    result.promoted_branches += 1
                else:
                    result.cond_branches += 1
                    pred_record = self.c_predrec[slot]
                    if pred_record is not None:
                        group = self.c_group[slot]
                        self.engine.train_branch(
                            pred_record, taken, tuple(group.actual_path)
                        )
                        group.actual_path.append(taken)
            elif code == 4:  # call
                self.arch_ras.append(inst.fall_through)
            elif code == 5:  # return
                if self.arch_ras:
                    self.arch_ras.pop()
            elif code == 6:  # indirect
                result.indirect_jumps += 1
                self.engine.indirect.update(inst.addr, self.c_next[slot])
            elif code == 7:  # trap
                if self.trap_pending == seq:
                    self.trap_pending = None
            elif code == 8:  # halt
                self.halted = True
        if self.c_cp[slot] is not None:
            self._drop_checkpoint(seq, slot)
        if self.max_instructions is not None and result.retired >= self.max_instructions:
            self.halted = True

    def _drop_checkpoint(self, seq: int, slot: int) -> None:
        if self.c_cp[slot] is not None:
            for i, (cseq, _cp) in enumerate(self.checkpoints):
                if cseq == seq:
                    del self.checkpoints[i]
                    break
            self.c_cp[slot] = None
            if self._validate_state:
                self.validate_state()

    # -------------------------------------------------------------- complete

    def _complete(self) -> None:
        done = self.completions.pop(self.cycle, None)
        if not done:
            return
        heappush = heapq.heappush
        ready_heaps = self.ready_heaps
        c_seq = self.c_seq
        c_state = self.c_state
        c_deps = self.c_deps
        c_pending = self.c_pending
        n_fus = self._n_fus
        for seq in done:
            slot = seq & W_MASK
            if c_seq[slot] != seq:
                continue  # departed (squashed and retired out of the window)
            if c_state[slot] == S_SQUASHED:
                continue
            c_state[slot] = S_DONE
            deps = c_deps[slot]
            if deps:
                # Dependents of a live producer are always live themselves:
                # they are younger, dispatched (registration happens at
                # wiring), and the ROB pops in order — so no slot-validity
                # check is needed here.
                for dseq in deps:
                    dslot = dseq & W_MASK
                    if c_state[dslot] == S_WAITING:
                        remaining = c_pending[dslot] - 1
                        c_pending[dslot] = remaining
                        if remaining <= 0:
                            c_state[dslot] = S_READY
                            self.ready_total += 1
                            heappush(ready_heaps[dseq % n_fus], dseq)
                c_deps[slot] = None
            code = self.c_code[slot]
            if code == 1:  # store
                self.c_known[slot] = 1
                self._wake_store_waiters(seq)
            elif code == 3:  # conditional branch
                self._resolve_branch(seq, slot)
            elif code == 5 or code == 6:  # return / indirect
                self._resolve_indirect(seq, slot)
            if self.misfetch_waiting == seq:
                self.misfetch_waiting = None
                self.pc = self.c_next[slot]

    def _wake_store_waiters(self, store_seq: int) -> None:
        c_seq = self.c_seq
        c_state = self.c_state
        waiters = self._mem_waiters.pop(store_seq, None)
        if waiters:
            for lseq in waiters:
                lslot = lseq & W_MASK
                if c_seq[lslot] == lseq and c_state[lslot] == S_MEM_BLOCKED:
                    self._make_ready(lseq, lslot)
        if self.blocked_loads:
            oldest_unknown = self._oldest_unknown_store_seq()
            still_blocked = []
            for lseq in self.blocked_loads:
                lslot = lseq & W_MASK
                if c_seq[lslot] != lseq or c_state[lslot] != S_MEM_BLOCKED:
                    continue
                if oldest_unknown is None or oldest_unknown >= lseq:
                    self._make_ready(lseq, lslot)
                else:
                    still_blocked.append(lseq)
            self.blocked_loads = still_blocked

    def _make_ready(self, seq: int, slot: int) -> None:
        self.c_state[slot] = S_READY
        self.ready_total += 1
        heapq.heappush(self.ready_heaps[seq % self._n_fus], seq)

    # --------------------------------------------------------- branch repair

    def _resolve_branch(self, seq: int, slot: int) -> None:
        actual = self.c_taken[slot]
        if self.c_promoted[slot]:
            predicted = self.c_static[slot]
        else:
            predicted = self.c_ptaken[slot]
        if predicted == actual:
            buffer = self.c_buffer[slot]
            if buffer:
                for dseq in buffer:
                    self._squash_one(dseq)
                self.c_buffer[slot] = None
            return
        # Mispredicted.  Track stats, then repair.
        self.result.resolution_time_sum += \
            self.cycle + REDIRECT_BUBBLE - self.c_fcycle[slot]
        self.result.resolution_count += 1
        if self.c_promoted[slot]:
            self.result.promoted_faults += 1
            self._recover_fault(seq, slot)
        else:
            self.result.cond_mispredicts += 1
            self._recover_mispredict(seq, slot)

    def _recover_mispredict(self, seq: int, slot: int) -> None:
        """Checkpoint repair at the branch's own checkpoint."""
        if self._memo_rec is not None:
            self._memo_rec = None   # recoveries are never memoized
            self._memo_run_stats["aborts"] += 1
        cp = self.c_cp[slot]
        assert cp is not None, "dynamic branch without checkpoint"
        taken = self.c_taken[slot]
        next_pc = self.c_next[slot]
        self._restore(cp)
        self.engine.ghr.push(taken)
        buffer = self.c_buffer[slot]
        self.c_buffer[slot] = None
        activate = bool(buffer) and self.c_inst[buffer[0] & W_MASK].addr == next_pc
        exempt = frozenset(buffer) if activate else frozenset()
        self._squash_younger(seq, exempt=exempt)
        self._fill_cuts.add(seq)
        # The checkpoint stays live until the branch retires; a later fault
        # rolling back to it must resume along the now-known-correct path.
        cp.resume_pc = next_pc
        if activate:
            redirect = self._activate_dormant(buffer)
        else:
            redirect = next_pc
        self.pc = redirect
        self.redirect_bubble = REDIRECT_BUBBLE
        self._clear_fetch_state()

    def _recover_fault(self, seq: int, slot: int) -> None:
        """Promoted-branch fault: back up to the *previous* checkpoint.

        The machine restores the nearest older checkpoint, squashes
        everything younger than it (including correct-path work in the
        faulting atomic unit), and refetches from the checkpoint's resume
        point with a one-shot direction override installed so the branch
        executes correctly this time.
        """
        if self._memo_rec is not None:
            self._memo_rec = None
            self._memo_run_stats["aborts"] += 1
        cp_entry = None
        for cseq, cp in reversed(self.checkpoints):
            if cseq < seq:
                cp_entry = (cseq, cp)
                break
        buffer = self.c_buffer[slot]
        if buffer:
            for dseq in buffer:
                self._squash_one(dseq)
            self.c_buffer[slot] = None
        add_fault_override = getattr(self.engine, "add_fault_override", None)
        if add_fault_override is not None:
            add_fault_override(self.c_inst[slot].addr, self.c_taken[slot])
        if cp_entry is None:
            # No older checkpoint alive (fault very early in a fetch
            # burst): fall back to branch-local recovery.
            self._restore_at_branch(seq, slot)
            self.pc = self.c_next[slot]
        else:
            cseq, cp = cp_entry
            oslot = self._find_in_rob(cseq)
            self._fill_cuts.add(cseq)
            self._restore(cp)
            if oslot >= 0 and self.c_inst[oslot].op.is_cond_branch:
                if self.c_state[oslot] == S_DONE:
                    self.engine.ghr.push(self.c_taken[oslot])
                else:
                    self.engine.ghr.push(
                        self.c_static[oslot] if self.c_promoted[oslot]
                        else self.c_ptaken[oslot]
                    )
            self._squash_younger(cseq)
            self.pc = cp.resume_pc if cp.resume_pc is not None else self.c_next[slot]
        self.redirect_bubble = REDIRECT_BUBBLE + FAULT_EXTRA_PENALTY
        self._clear_fetch_state()

    def _restore_at_branch(self, bseq: int, bslot: int) -> None:
        """Recovery at a branch without its own checkpoint.

        Reconstructs speculative state by replaying the window on top of
        the committed architectural state: registers and rename from every
        live instruction up to the branch, global history and return
        address stack from the in-flight control instructions.
        """
        self._memo_sig = None   # same stale-delta guard as _restore
        regs = list(self.arch_regs)
        rename: List[int] = [0] * NUM_REGS
        ghr = self.arch_ghr
        ras = list(self.arch_ras)
        c_state = self.c_state
        c_active = self.c_active
        c_row = self.c_row
        c_value = self.c_value
        c_inst = self.c_inst
        for seq in self.rob:
            slot = seq & W_MASK
            if seq > bseq or c_state[slot] == S_SQUASHED or not c_active[slot]:
                continue
            dest = c_row[slot][7]
            if dest is not None:
                regs[dest] = c_value[slot]
                rename[dest] = seq
            op = c_inst[slot].op
            if op.is_cond_branch:
                if seq == bseq:
                    fetched_dir = self.c_taken[slot]  # repair pushes the outcome
                else:
                    fetched_dir = (self.c_static[slot] if self.c_promoted[slot]
                                   else self.c_ptaken[slot])
                ghr = ((ghr << 1) | int(bool(fetched_dir))) & self._ghr_mask
            elif op.opclass is OpClass.CALL:
                ras.append(c_inst[slot].fall_through)
            elif op.opclass is OpClass.RETURN and ras:
                ras.pop()
        self.spec_regs = regs
        self.rename = rename
        self.engine.ghr.restore(ghr)
        self.engine.ras.restore(tuple(ras))
        self._truncate_mem_queues(bseq)
        self._rescan_mem_blocked()
        self._squash_younger(bseq)

    def _resolve_indirect(self, seq: int, slot: int) -> None:
        """JR / RET target verification."""
        predicted_next = self.c_prednext[slot]
        if predicted_next is None:
            # Misfetch: fetch has been stalled on this jump; _complete
            # redirects via misfetch_waiting.
            return
        next_pc = self.c_next[slot]
        if predicted_next == next_pc:
            return
        self.result.indirect_mispredicts += 1
        self.result.resolution_time_sum += \
            self.cycle + REDIRECT_BUBBLE - self.c_fcycle[slot]
        self.result.resolution_count += 1
        if self._memo_rec is not None:
            self._memo_rec = None
            self._memo_run_stats["aborts"] += 1
        cp = self.c_cp[slot]
        self._fill_cuts.add(seq)
        if cp is not None:
            self._restore(cp)
            self._squash_younger(seq)
            cp.resume_pc = next_pc
        else:  # pragma: no cover - indirect fetch-enders always checkpoint
            self._restore_at_branch(seq, slot)
        self.pc = next_pc
        self.redirect_bubble = REDIRECT_BUBBLE
        self._clear_fetch_state()

    def _restore(self, cp: Checkpoint) -> None:
        # A chained memo signature describes the pipeline as a hit left
        # it; rolling the core back invalidates that description, so a
        # restored core must never carry the signature into its next
        # fetch (it would key a stale delta).
        self._memo_sig = None
        self.spec_regs = list(cp.regs)
        self.rename = list(cp.rename)
        self.engine.ghr.restore(cp.ghr_before)
        self.engine.ras.restore(cp.ras_state)
        self._truncate_mem_queues(cp.seq)
        self._rescan_mem_blocked()
        if self._validate_state:
            self.validate_state()

    def validate_state(self) -> None:
        """Check the core's structural invariants (validation mode only).

        Called after every checkpoint restore and drop; each check names
        a contract the recovery machinery must maintain:

        * the checkpoint stack is strictly ordered by sequence number
          (restores binary-search and pop it by seq);
        * the store queue is in dispatch (sequence) order and every
          member occupies its window slot with the ``sq_live`` flag set
          (commit and truncation clear the flag exactly when they remove
          the entry);
        * every live store reachable through the address-indexed
          ``store_map`` is present in the store queue — a map entry
          outliving its queue entry would forward dead data to loads.
        """
        from repro.validate.errors import InvariantError
        checkpoints = self.checkpoints
        for i in range(1, len(checkpoints)):
            if checkpoints[i - 1][0] >= checkpoints[i][0]:
                raise InvariantError(
                    "checkpoint stack out of order: "
                    f"{[seq for seq, _ in checkpoints]}")
        queue_seqs = set()
        prev_seq = -1
        for seq in self.store_queue:
            slot = seq & W_MASK
            if seq <= prev_seq:
                raise InvariantError(
                    "store queue out of dispatch order at "
                    f"seq {seq} (after {prev_seq})")
            prev_seq = seq
            if self.c_seq[slot] != seq:
                raise InvariantError(
                    f"store seq {seq} is in the store queue but its window "
                    "slot was recycled")
            if not self.c_sqlive[slot]:
                raise InvariantError(
                    f"store seq {seq} is in the store queue but "
                    "not flagged sq_live")
            queue_seqs.add(seq)
        for addr, bucket in self.store_map.items():
            for seq in bucket:
                slot = seq & W_MASK
                if self.c_seq[slot] == seq and self.c_sqlive[slot] \
                        and self.c_state[slot] != S_SQUASHED \
                        and seq not in queue_seqs:
                    raise InvariantError(
                        f"live store seq {seq} (addr {addr:#x}) is "
                        "in store_map but missing from the store queue")

    def _truncate_mem_queues(self, seq: int) -> None:
        """Drop store/load-queue entries younger than ``seq``.

        Truncation is by sequence number, not by remembered length: older
        entries may have retired from the queue front since the checkpoint
        was taken.
        """
        keep = []
        c_known = self.c_known
        c_sqlive = self.c_sqlive
        for sseq in self.store_queue:
            if sseq <= seq:
                keep.append(sseq)
            else:
                slot = sseq & W_MASK
                c_known[slot] = 1  # squashed; stop blocking loads
                c_sqlive[slot] = 0
        self.store_queue = keep
        self.load_queue = [ls for ls in self.load_queue if ls <= seq]

    def _rescan_mem_blocked(self) -> None:
        """Re-evaluate every memory-blocked load after a recovery.

        The store a load was waiting on may have been squashed; waking the
        loads and letting the scheduler re-run its checks is always safe.
        """
        waiting = list(self.blocked_loads)
        for loads in self._mem_waiters.values():
            waiting.extend(loads)
        self.blocked_loads = []
        self._mem_waiters = {}
        c_seq = self.c_seq
        c_state = self.c_state
        for lseq in waiting:
            lslot = lseq & W_MASK
            if c_seq[lslot] == lseq and c_state[lslot] == S_MEM_BLOCKED:
                self._make_ready(lseq, lslot)

    def _squash_younger(self, seq: int, exempt: frozenset = frozenset()) -> None:
        """Kill everything younger than ``seq`` except exempted sequence
        numbers (an inactive buffer about to be activated).

        The ROB is ordered by sequence number, so walking from the young
        end and stopping at the anchor visits only the records that can
        possibly squash — recoveries are frequent enough on branchy codes
        that a full-ROB sweep per recovery was a measurable cost.
        """
        squash_one = self._squash_one
        c_state = self.c_state
        c_deps = self.c_deps
        c_cp = self.c_cp
        c_buffer = self.c_buffer
        c_dcycle = self.c_dcycle
        rs_count = self.rs_count
        n_fus = self._n_fus
        # _squash_one is inlined in both loops below (it is the hottest
        # recovery call on branchy codes); the buffered-dormant recursion
        # still goes through the method.
        for rseq in reversed(self.rob):
            if rseq <= seq:
                break
            if rseq not in exempt:
                slot = rseq & W_MASK
                previous = c_state[slot]
                if previous == S_SQUASHED:
                    continue
                c_state[slot] = S_SQUASHED
                c_deps[slot] = None
                c_cp[slot] = None
                buffer = c_buffer[slot]
                if buffer:
                    for dseq in buffer:
                        if c_state[dseq & W_MASK] != S_SQUASHED:
                            squash_one(dseq)
                    c_buffer[slot] = None
                if previous == S_READY:
                    self.ready_total -= 1
                if previous < S_EXECUTING and c_dcycle[slot] >= 0:
                    rs_count[rseq % n_fus] -= 1
        # Anything still waiting to dispatch is on the wrong path too;
        # exempted records leave the queue and are force-dispatched by
        # dormant activation.
        for qseq in self.dispatch_queue:
            if qseq not in exempt:
                slot = qseq & W_MASK
                previous = c_state[slot]
                if previous == S_SQUASHED:
                    continue
                c_state[slot] = S_SQUASHED
                c_deps[slot] = None
                c_cp[slot] = None
                buffer = c_buffer[slot]
                if buffer:
                    for dseq in buffer:
                        if c_state[dseq & W_MASK] != S_SQUASHED:
                            squash_one(dseq)
                    c_buffer[slot] = None
                if previous == S_READY:
                    self.ready_total -= 1
                if previous < S_EXECUTING and c_dcycle[slot] >= 0:
                    rs_count[qseq % n_fus] -= 1
        self.dispatch_queue.clear()
        checkpoints = self.checkpoints
        while checkpoints and checkpoints[-1][0] > seq:
            checkpoints.pop()
        if self.trap_pending is not None and self.trap_pending > seq:
            self.trap_pending = None
        if self.misfetch_waiting is not None and self.misfetch_waiting > seq:
            self.misfetch_waiting = None

    def _squash_one(self, seq: int) -> None:
        slot = seq & W_MASK
        c_state = self.c_state
        previous = c_state[slot]
        c_state[slot] = S_SQUASHED
        self.c_deps[slot] = None
        self.c_cp[slot] = None
        buffer = self.c_buffer[slot]
        if buffer:
            for dseq in buffer:
                if c_state[dseq & W_MASK] != S_SQUASHED:
                    self._squash_one(dseq)
            self.c_buffer[slot] = None
        if previous == S_READY:
            self.ready_total -= 1
        # States below EXECUTING still hold a reservation-station slot.
        if previous < S_EXECUTING and self.c_dcycle[slot] >= 0:
            self.rs_count[seq % self._n_fus] -= 1

    def _find_in_rob(self, seq: int) -> int:
        """Window slot of ``seq`` if it is still in the ROB, else -1."""
        for rseq in reversed(self.rob):
            if rseq == seq:
                return seq & W_MASK
            if rseq < seq:
                return -1
        return -1

    def _clear_fetch_state(self) -> None:
        self.pending_fetch = None
        self.icache_stall = 0

    def _activate_dormant(self, buffer: List[int]) -> int:
        """Wake inactively issued instructions after their branch
        mispredicted in their favour; returns the fetch resume address."""
        resume = self.c_inst[buffer[-1] & W_MASK].addr + 1
        n_fus = self._n_fus
        c_state = self.c_state
        c_dcycle = self.c_dcycle
        for seq in buffer:
            slot = seq & W_MASK
            if c_state[slot] == S_SQUASHED and c_dcycle[slot] >= 0:
                # An *older* recovery (e.g. a promoted-branch fault rolling
                # back past this fetch) squashed the buffer while its branch
                # was still unresolved.  The entry is still in the ROB at
                # the right position: resurrect it in place.
                self.rs_count[seq % n_fus] += 1
            if c_dcycle[slot] < 0:
                # Still in (or squashed out of) the dispatch queue: give it
                # its window slot now — it issues as part of the recovery.
                self.rs_count[seq % n_fus] += 1
                self.rob.append(seq)
                c_dcycle[slot] = self.cycle
            self.c_active[slot] = 1
            self._wire_and_execute(seq, slot)
            self.result.dormant_activations += 1
            resume = self.c_next[slot]
            inst = self.c_inst[slot]
            if inst.op.is_cond_branch:
                # The embedded trace direction serves as the prediction
                # (these branches were never dynamically predicted).
                # Promoted branches do not get checkpoints, matching the
                # dispatch policy.
                if not self.c_promoted[slot]:
                    self.c_ptaken[slot] = self.c_static[slot]
                    self._checkpoint_for(seq, slot)
                self.engine.ghr.push(self.c_static[slot])
            elif inst.op is Opcode.CALL:
                self.engine.ras.push(inst.fall_through)
        return resume

    # -------------------------------------------------------------- schedule

    def _schedule(self) -> None:
        heappop = heapq.heappop
        heappush = heapq.heappush
        rs_count = self.rs_count
        completions = self.completions
        comp_cycles = self.comp_cycles
        cycle = self.cycle
        alu_latency = self._alu_latency
        mul_latency = self._mul_latency
        ready_total = self.ready_total
        c_seq = self.c_seq
        c_state = self.c_state
        c_code = self.c_code
        for fu, heap in enumerate(self.ready_heaps):
            if not heap:
                continue
            while heap:
                seq = heap[0]
                slot = seq & W_MASK
                if c_seq[slot] != seq or c_state[slot] != S_READY:
                    heappop(heap)  # squashed, departed, or stale entry
                    continue
                code = c_code[slot]
                if code == 2:  # load
                    verdict = self._try_schedule_load(seq, slot)
                    if verdict is None:
                        # Blocked; parked with the memory scheduler.
                        heappop(heap)
                        ready_total -= 1
                        continue
                    latency = verdict
                elif code == 9:  # MUL
                    latency = mul_latency
                else:
                    latency = alu_latency
                heappop(heap)
                c_state[slot] = S_EXECUTING
                rs_count[fu] -= 1
                ready_total -= 1
                finish = cycle + latency
                bucket = completions.get(finish)
                if bucket is None:
                    completions[finish] = [seq]
                    heappush(comp_cycles, finish)
                else:
                    bucket.append(seq)
                break
            if not ready_total:
                break
        self.ready_total = ready_total

    def _oldest_unknown_store_seq(self) -> Optional[int]:
        """Sequence number of the oldest store whose address the memory
        scheduler does not yet consider known, cleaning stale heap entries
        (completed, squashed, truncated, or departed stores) on the way."""
        heap = self.unknown_stores
        c_seq = self.c_seq
        c_state = self.c_state
        c_known = self.c_known
        while heap:
            seq = heap[0]
            slot = seq & W_MASK
            if c_seq[slot] != seq:
                heapq.heappop(heap)
                continue
            state = c_state[slot]
            if c_known[slot] or state == S_DONE or state == S_SQUASHED:
                heapq.heappop(heap)
                continue
            return seq
        return None

    def _youngest_older_matching_store(self, load_seq: int, mem_addr) -> int:
        """Seq of the youngest live store older than the load at the same
        address, or 0 when there is none."""
        bucket = self.store_map.get(mem_addr)
        if not bucket:
            return 0
        c_seq = self.c_seq
        c_state = self.c_state
        c_sqlive = self.c_sqlive
        # Prune departed (committed/squashed) stores off the tail while
        # they are youngest; interior dead entries are skipped below and
        # become prunable once everything younger has departed too.
        while bucket:
            seq = bucket[-1]
            slot = seq & W_MASK
            if c_seq[slot] == seq and c_sqlive[slot] and c_state[slot] != S_SQUASHED:
                break
            bucket.pop()
        for seq in reversed(bucket):
            slot = seq & W_MASK
            if seq < load_seq and c_seq[slot] == seq and c_sqlive[slot] \
                    and c_state[slot] != S_SQUASHED:
                return seq
        return 0

    def _try_schedule_load(self, seq: int, slot: int) -> Optional[int]:
        """Memory scheduling for a load; returns latency or None if blocked."""
        if not self._perfect_disamb:
            oldest_unknown = self._oldest_unknown_store_seq()
            if oldest_unknown is not None and oldest_unknown < seq:
                self.c_state[slot] = S_MEM_BLOCKED
                self.blocked_loads.append(seq)
                if self._memo_rec is not None:
                    # Conservative-disambiguation block: the wake-up
                    # ordering is not modelled, abort the recording.
                    self._memo_rec = None
                    self._memo_run_stats["aborts"] += 1
                return None
        match = self._youngest_older_matching_store(seq, self.c_mem[slot])
        if match:
            if self.c_state[match & W_MASK] != S_DONE:
                self.c_state[slot] = S_MEM_BLOCKED
                self._mem_waiters.setdefault(match, []).append(seq)
                if self._memo_rec is not None:
                    self._memo_rec = None
                    self._memo_run_stats["aborts"] += 1
                return None
            self.result.load_forwards += 1
            if self._memo_rec is not None:
                memo.record_load(self, self._memo_rec, seq, match, None)
            return 1
        self.result.dcache_accesses += 1
        latency = self._data_latency(self.c_mem[slot])
        if self._memo_rec is not None:
            memo.record_load(self, self._memo_rec, seq, 0, latency)
        return latency

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, width: int) -> None:
        """Rename, functionally execute, and window up to ``width``
        instructions.

        The interpreter is row-driven: every operand index, immediate, and
        successor was resolved once per static instruction by
        :func:`_decode_row`, so the loop body touches only ints and the
        register file.  No recovery can interleave with the dispatch stage,
        so the speculative-state bindings hoisted above the loop are stable
        for the whole call.
        """
        dispatched = 0
        checkpoints_this_cycle = 0
        queue = self.dispatch_queue
        n_fus = self._n_fus
        rs_per_fu = self._rs_per_fu
        cp_budget = self._cp_budget
        cp_per_cycle = self._cp_per_cycle
        rs_count = self.rs_count
        rob_append = self.rob.append
        cycle = self.cycle
        regs = self.spec_regs
        rename = self.rename
        store_queue = self.store_queue
        load_queue = self.load_queue
        store_map_get = self.store_map.get
        store_map = self.store_map
        memory_get = self.memory_image.get
        ready_heaps = self.ready_heaps
        unknown_stores = self.unknown_stores
        track_unknown = not self._perfect_disamb
        heappush = heapq.heappush
        ready_total = self.ready_total
        c_seq = self.c_seq
        c_state = self.c_state
        c_row = self.c_row
        c_deps = self.c_deps
        c_pending = self.c_pending
        c_active = self.c_active
        c_cpneed = self.c_cpneed
        c_dcycle = self.c_dcycle
        c_next = self.c_next
        c_taken = self.c_taken
        c_mem = self.c_mem
        c_value = self.c_value
        c_sqlive = self.c_sqlive
        # Each interpreter arm stores only the result columns its op
        # actually produces; every read of those columns is gated on the
        # op class (or, for values, the row's dest field) exactly as the
        # arms leave them.
        while queue and dispatched < width:
            seq = queue[0]
            fu = seq % n_fus
            if rs_count[fu] >= rs_per_fu:
                break  # window full
            slot = seq & W_MASK
            # A checkpoint accompanies every fetch-block boundary: each
            # dynamically predicted branch and the end of each fetch
            # (pre-resolved in the ``cp_need`` column at enqueue).
            active = c_active[slot]
            needs_cp = active and c_cpneed[slot]
            if needs_cp and (
                len(self.checkpoints) >= cp_budget
                or checkpoints_this_cycle > cp_per_cycle
            ):
                break  # out of checkpoint resources; resume next cycle
            queue.popleft()
            rs_count[fu] += 1
            rob_append(seq)
            c_dcycle[slot] = cycle
            dispatched += 1
            if not active:
                c_state[slot] = S_DORMANT
                continue

            row = c_row[slot]
            srcs = row[4]
            pending = 0
            if srcs:
                for reg in srcs:
                    pseq = rename[reg]
                    if pseq:
                        pslot = pseq & W_MASK
                        if c_seq[pslot] == pseq:
                            pstate = c_state[pslot]
                            if pstate != S_DONE and pstate != S_SQUASHED:
                                pending += 1
                                pdeps = c_deps[pslot]
                                if pdeps is None:
                                    c_deps[pslot] = [seq]
                                else:
                                    pdeps.append(seq)

            kind = row[0]
            a = row[1]
            b = row[2]
            c = row[3]
            value = None
            dest = None
            if kind == 1:    # ANDI
                value = regs[a] & b
                dest = c
            elif kind == 2:  # ADDI
                value = (regs[a] + b) & _MASK
                dest = c
            elif kind == 3:  # ADD
                value = (regs[a] + regs[b]) & _MASK
                dest = c
            elif kind == 4:  # LD
                mem_addr = (regs[a] + b) & _MASK
                c_mem[slot] = mem_addr
                # Youngest live store to the address forwards its data
                # (committed stores fall through to the memory image,
                # which their commit already updated — same value the
                # full-queue scan used to find).
                bucket = store_map_get(mem_addr)
                if bucket:
                    while bucket:
                        sseq = bucket[-1]
                        sslot = sseq & W_MASK
                        if c_seq[sslot] == sseq and c_sqlive[sslot] \
                                and c_state[sslot] != S_SQUASHED:
                            value = c_value[sslot] & _MASK
                            break
                        bucket.pop()
                if value is None:
                    value = memory_get(mem_addr, 0) & _MASK
                dest = c
                load_queue.append(seq)
            elif kind == 5:  # BNE
                taken = regs[a] != regs[b]
                c_taken[slot] = taken
                c_next[slot] = c if taken else row[5]
            elif kind == 6:  # BEQ
                taken = regs[a] == regs[b]
                c_taken[slot] = taken
                c_next[slot] = c if taken else row[5]
            elif kind == 7:  # ST
                mem_addr = (regs[a] + b) & _MASK
                c_mem[slot] = mem_addr
                c_value[slot] = regs[c] & _MASK
                store_queue.append(seq)
                c_sqlive[slot] = 1
                bucket = store_map_get(mem_addr)
                if bucket is None:
                    store_map[mem_addr] = [seq]
                else:
                    bucket.append(seq)
                if track_unknown:
                    heappush(unknown_stores, seq)
            elif kind == 8:  # MUL
                value = (regs[a] * regs[b]) & _MASK
                dest = c
            elif kind == 9:  # AND
                value = regs[a] & regs[b]
                dest = c
            elif kind == 10:  # XOR
                value = regs[a] ^ regs[b]
                dest = c
            elif kind == 11:  # SUB
                value = (regs[a] - regs[b]) & _MASK
                dest = c
            elif kind == 12:  # SLTI
                x = regs[a]
                value = 1 if (x - _TWO64 if x & _SIGN_BIT else x) < b else 0
                dest = c
            elif kind == 13:  # OR
                value = regs[a] | regs[b]
                dest = c
            elif kind == 14:  # BLT
                x = regs[a]
                y = regs[b]
                taken = (x - _TWO64 if x & _SIGN_BIT else x) \
                    < (y - _TWO64 if y & _SIGN_BIT else y)
                c_taken[slot] = taken
                c_next[slot] = c if taken else row[5]
            elif kind == 15:  # BGE
                x = regs[a]
                y = regs[b]
                taken = (x - _TWO64 if x & _SIGN_BIT else x) \
                    >= (y - _TWO64 if y & _SIGN_BIT else y)
                c_taken[slot] = taken
                c_next[slot] = c if taken else row[5]
            elif kind == 16:  # SHL
                value = (regs[a] << (regs[b] & 63)) & _MASK
                dest = c
            elif kind == 17:  # SHR
                value = (regs[a] & _MASK) >> (regs[b] & 63)
                dest = c
            elif kind == 18:  # SLT
                x = regs[a]
                y = regs[b]
                value = 1 if (x - _TWO64 if x & _SIGN_BIT else x) \
                    < (y - _TWO64 if y & _SIGN_BIT else y) else 0
                dest = c
            elif kind == 19:  # ORI
                value = regs[a] | b
                dest = c
            elif kind == 20:  # XORI
                value = regs[a] ^ b
                dest = c
            elif kind == 21:  # LUI
                value = b
                dest = c
            elif kind == 22:  # NOP / TRAP / JMP / HALT: successor in the row
                pass
            elif kind == 23:  # CALL
                value = b
                dest = REG_LINK
            elif kind == 24:  # RET
                c_next[slot] = regs[REG_LINK] & _MASK
            elif kind == 25:  # JR
                c_next[slot] = regs[a] & _MASK
            else:  # pragma: no cover - exhaustive over the row kinds
                raise NotImplementedError(kind)

            if dest is not None:
                c_value[slot] = value
                regs[dest] = value
                rename[dest] = seq
            if pending:
                c_pending[slot] = pending  # stays S_WAITING from enqueue
            else:
                c_state[slot] = S_READY
                ready_total += 1
                heappush(ready_heaps[fu], seq)

            if needs_cp:
                self._checkpoint_for(seq, slot)
                checkpoints_this_cycle += 1
        self.ready_total = ready_total

    def _wire_and_execute(self, seq: int, slot: int) -> None:
        """Rename, functionally execute, and queue one instruction.

        The out-of-line twin of the dispatch loop body, used by dormant
        activation (which wires records during recovery, outside the
        dispatch stage).  Semantics are identical.
        """
        rename = self.rename
        c_seq = self.c_seq
        c_state = self.c_state
        c_deps = self.c_deps
        row = self.c_row[slot]
        pending = 0
        for reg in row[4]:
            pseq = rename[reg]
            if pseq:
                pslot = pseq & W_MASK
                if c_seq[pslot] == pseq:
                    pstate = c_state[pslot]
                    if pstate != S_DONE and pstate != S_SQUASHED:
                        pending += 1
                        pdeps = c_deps[pslot]
                        if pdeps is None:
                            c_deps[pslot] = [seq]
                        else:
                            pdeps.append(seq)
        self.c_pending[slot] = pending

        regs = self.spec_regs
        kind = row[0]
        a = row[1]
        b = row[2]
        c = row[3]
        next_pc = row[5]
        taken = None
        mem_addr = None
        value = None
        dest = None
        if kind == 1:    # ANDI
            value = regs[a] & b
            dest = c
        elif kind == 2:  # ADDI
            value = (regs[a] + b) & _MASK
            dest = c
        elif kind == 3:  # ADD
            value = (regs[a] + regs[b]) & _MASK
            dest = c
        elif kind == 4:  # LD
            mem_addr = (regs[a] + b) & _MASK
            bucket = self.store_map.get(mem_addr)
            if bucket:
                c_sqlive = self.c_sqlive
                c_value = self.c_value
                while bucket:
                    sseq = bucket[-1]
                    sslot = sseq & W_MASK
                    if c_seq[sslot] == sseq and c_sqlive[sslot] \
                            and c_state[sslot] != S_SQUASHED:
                        value = c_value[sslot] & _MASK
                        break
                    bucket.pop()
            if value is None:
                value = self.memory_image.get(mem_addr, 0) & _MASK
            dest = c
        elif kind == 5:  # BNE
            taken = regs[a] != regs[b]
            if taken:
                next_pc = c
        elif kind == 6:  # BEQ
            taken = regs[a] == regs[b]
            if taken:
                next_pc = c
        elif kind == 7:  # ST
            mem_addr = (regs[a] + b) & _MASK
            value = regs[c] & _MASK
        elif kind == 8:  # MUL
            value = (regs[a] * regs[b]) & _MASK
            dest = c
        elif kind == 9:  # AND
            value = regs[a] & regs[b]
            dest = c
        elif kind == 10:  # XOR
            value = regs[a] ^ regs[b]
            dest = c
        elif kind == 11:  # SUB
            value = (regs[a] - regs[b]) & _MASK
            dest = c
        elif kind == 12:  # SLTI
            x = regs[a]
            value = 1 if (x - _TWO64 if x & _SIGN_BIT else x) < b else 0
            dest = c
        elif kind == 13:  # OR
            value = regs[a] | regs[b]
            dest = c
        elif kind == 14:  # BLT
            x = regs[a]
            y = regs[b]
            taken = (x - _TWO64 if x & _SIGN_BIT else x) \
                < (y - _TWO64 if y & _SIGN_BIT else y)
            if taken:
                next_pc = c
        elif kind == 15:  # BGE
            x = regs[a]
            y = regs[b]
            taken = (x - _TWO64 if x & _SIGN_BIT else x) \
                >= (y - _TWO64 if y & _SIGN_BIT else y)
            if taken:
                next_pc = c
        elif kind == 16:  # SHL
            value = (regs[a] << (regs[b] & 63)) & _MASK
            dest = c
        elif kind == 17:  # SHR
            value = (regs[a] & _MASK) >> (regs[b] & 63)
            dest = c
        elif kind == 18:  # SLT
            x = regs[a]
            y = regs[b]
            value = 1 if (x - _TWO64 if x & _SIGN_BIT else x) \
                < (y - _TWO64 if y & _SIGN_BIT else y) else 0
            dest = c
        elif kind == 19:  # ORI
            value = regs[a] | b
            dest = c
        elif kind == 20:  # XORI
            value = regs[a] ^ b
            dest = c
        elif kind == 21:  # LUI
            value = b
            dest = c
        elif kind == 22:  # NOP / TRAP / JMP / HALT
            pass
        elif kind == 23:  # CALL
            value = b
            dest = REG_LINK
        elif kind == 24:  # RET
            next_pc = regs[REG_LINK] & _MASK
        elif kind == 25:  # JR
            next_pc = regs[a] & _MASK
        else:  # pragma: no cover - exhaustive over the row kinds
            raise NotImplementedError(kind)

        self.c_next[slot] = next_pc
        self.c_taken[slot] = taken
        self.c_mem[slot] = mem_addr
        self.c_value[slot] = value
        if dest is not None:
            regs[dest] = value
            rename[dest] = seq
        if kind == 7:
            self.store_queue.append(seq)
            self.c_sqlive[slot] = 1
            bucket = self.store_map.get(mem_addr)
            if bucket is None:
                self.store_map[mem_addr] = [seq]
            else:
                bucket.append(seq)
            if not self._perfect_disamb:
                heapq.heappush(self.unknown_stores, seq)
        elif kind == 4:
            self.load_queue.append(seq)
        if pending == 0:
            c_state[slot] = S_READY
            self.ready_total += 1
            heapq.heappush(self.ready_heaps[seq % self._n_fus], seq)
        else:
            c_state[slot] = S_WAITING

    def _checkpoint_for(self, seq: int, slot: int) -> None:
        snap = self.c_snap[slot]
        if snap is not None:
            ghr_before, ras_state = snap
        else:
            ghr_before = self.engine.ghr.value
            ras_state = self.engine.ras.snapshot()
        inst = self.c_inst[slot]
        op = inst.op
        if op.is_cond_branch and self.c_ptaken[slot] is not None:
            resume_pc = inst.target if self.c_ptaken[slot] else inst.fall_through
        elif op.is_cond_branch and self.c_static[slot] is not None:
            # Promoted branch: its static prediction is the fetched path.
            resume_pc = inst.target if self.c_static[slot] else inst.fall_through
        elif self.c_prednext[slot] is not None:
            resume_pc = self.c_prednext[slot]
        else:
            resume_pc = inst.fall_through
        cp = Checkpoint(
            regs=list(self.spec_regs),
            rename=list(self.rename),
            ghr_before=ghr_before,
            ras_state=ras_state,
            sq_len=len(self.store_queue),
            lq_len=len(self.load_queue),
            seq=seq,
            resume_pc=resume_pc,
        )
        self.c_cp[slot] = cp
        self.checkpoints.append((seq, cp))
        if self._memo_rec is not None:
            memo.record_checkpoint(self, self._memo_rec, seq)

    # ----------------------------------------------------------------- fetch

    def _fetch(self) -> None:
        if self.halted:
            return
        if self.trap_pending is not None:
            self.acc_traps += 1
            return
        if self.misfetch_waiting is not None:
            self.acc_misfetch += 1
            return
        if self.redirect_bubble > 0:
            self.redirect_bubble -= 1
            self.acc_branch_miss += 1
            return
        if self.icache_stall > 0:
            self.icache_stall -= 1
            self.acc_cache_miss += 1
            if self.icache_stall == 0 and self.pending_fetch is not None:
                result, group = self.pending_fetch
                self.pending_fetch = None
                self._enqueue_fetch(result, group)
            return
        if self.dispatch_queue:
            self.acc_full_window += 1
            return

        engine = self.engine
        # Timing-memo span boundary: the machine sits at a fetch point, so
        # an open recording closes here (its successor context doubles as
        # the next lookup signature) and an applied hit's chained signature
        # is consumed.  The boundary sits *before* engine.fetch, so the
        # front end itself (predictors, trace cache, GHR/RAS) always runs
        # live — only the machine timing of the span is replayed.
        chain_sig = None
        if self._memo is not None:
            rec = self._memo_rec
            if rec is not None:
                self._memo_rec = None
                chain_sig = memo.finalize(self, rec)
            else:
                chain_sig = self._memo_sig
                self._memo_sig = None
        while True:
            entry_ghr = 0
            entry_ras = None
            if self._fast_fetch:
                # Capture-off fast path: remember the fetch-entry (GHR,
                # RAS) so branch snapshots can be reconstructed.  Fetches
                # cut by a pending promoted-fault override — the one shape
                # that cannot be reconstructed — capture their snapshots
                # inside the engine's slow override walk regardless of the
                # capture flag.
                entry_ghr = engine.ghr.value
                entry_ras = engine.ras.snapshot()
                result = engine.fetch(self.pc)
            else:
                result = engine.fetch(self.pc)
            if not result.active:
                # Wrong-path fetch ran off the code image; spin until repair.
                self.acc_branch_miss += 1
                return
            self.fetch_id += 1
            group = FetchGroup(self.fetch_id, self.cycle)
            self.result.fetches += 1
            variant = result.variant
            if variant is not None:
                # Variant fetches never stall (trace hits are single-cycle).
                if self._memo is not None:
                    if memo.on_variant_fetch(self, result, variant, group,
                                             entry_ghr, entry_ras, chain_sig):
                        # Hit applied: the machine now sits at the *next*
                        # fetch point (a recorded span ends exactly where
                        # its recording did — immediately before a fetch,
                        # with every stall condition clear), so chain
                        # straight into that fetch within this cycle's
                        # fetch stage.
                        chain_sig = self._memo_sig
                        self._memo_sig = None
                        continue
                    chain_sig = None
                self._fetch_cycle_groups.append((self.cycle, group))
                self._enqueue_variant(result, variant, group, entry_ghr,
                                      entry_ras)
                return
            break
        if entry_ras is not None and result.source == "icache" \
                and result.active_dirs[-1] is not None:
            # Capture was off for this icache block: the snapshot the
            # capture walk would take for its ending branch is exactly the
            # fetch-entry state (nothing touches GHR/RAS before that
            # point), so synthesize it.
            result.control_snapshots = {
                len(result.active) - 1: (entry_ghr, entry_ras)}
        if result.stall_cycles > 0:
            self.icache_stall = result.stall_cycles
            self.pending_fetch = (result, group)
            self.acc_cache_miss += 1
            return
        self._fetch_cycle_groups.append((self.cycle, group))
        self._enqueue_fetch(result, group)

    def _enqueue_variant(self, result: FetchResult, variant, group: FetchGroup,
                         entry_ghr: int, entry_ras: tuple) -> None:
        """Enqueue a compiled-variant fetch through its machine plan.

        Every uniform column is written with one slice assignment per
        fetch; only the (rare) branch positions get per-slot writes.
        """
        plan = variant.machine_plan
        if plan is None:
            plan = _compile_machine_plan(variant, result.segment, self._rows)
            variant.machine_plan = plan
        (n_act, all_insts, all_rows, all_codes, act_flags,
         act_branches, inact_branches, trap_off) = plan
        n = len(all_insts)
        base = self.seq
        rob = self.rob
        if rob and base + n - rob[0] >= WINDOW:
            raise RuntimeError(
                f"window span overflow: seq {base + n} vs ROB head {rob[0]}")
        s0 = (base + 1) & W_MASK
        self._reset_slots(s0, n, base, all_insts, all_rows, all_codes,
                          act_flags, group)
        ghr_mask = self._ghr_mask
        c_snap = self.c_snap
        c_cpneed = self.c_cpneed
        tokens = result.pred_tokens
        for (pos, direction, promoted, baddr, dyn_i, jshift, prefix,
             rpre) in act_branches:
            slot = (s0 + pos) & W_MASK
            if promoted:
                self.c_promoted[slot] = 1
                self.c_static[slot] = direction
                self.c_ptaken[slot] = None
            else:
                self.c_promoted[slot] = 0
                self.c_ptaken[slot] = direction
                c_cpneed[slot] = 1
                self.c_predrec[slot] = PredRecord(baddr, dyn_i, tokens[dyn_i],
                                                  direction)
            c_snap[slot] = (
                ((entry_ghr << jshift) | prefix) & ghr_mask,
                entry_ras if rpre is None else entry_ras + rpre,
            )
        for pos, sdir, promoted, cpn in inact_branches:
            slot = (s0 + pos) & W_MASK
            self.c_static[slot] = sdir
            self.c_promoted[slot] = promoted
            self.c_ptaken[slot] = None
            self.c_predrec[slot] = None
            c_cpneed[slot] = cpn
        last_seq = base + n_act
        last_slot = last_seq & W_MASK
        next_pc = result.next_pc
        if next_pc is not None:
            self.c_prednext[last_slot] = next_pc
            c_cpneed[last_slot] = 1
        if n > n_act:
            self.c_buffer[last_slot] = list(range(last_seq + 1, base + n + 1))
            self.result.inactive_issued += n - n_act
        self.dispatch_queue.extend(range(base + 1, base + n + 1))
        self.seq = base + n
        if trap_off >= 0:
            self.trap_pending = base + 1 + trap_off
        if next_pc is None:
            self.misfetch_waiting = last_seq
        else:
            self.pc = next_pc

    def _reset_slots(self, s0: int, n: int, base: int, all_insts, all_rows,
                     all_codes, act_flags, group: FetchGroup) -> None:
        """Claim and reset ``n`` window slots starting at slot ``s0`` for
        sequence numbers ``base+1 .. base+n``.

        One slice assignment per column (the same ``nones``/``zeros``
        source list serves several columns — slice assignment copies).
        The wrapped case (the block straddles the end of the circular
        window) splits every slice in two.
        """
        tmpl = _RESET_TMPL.get(n)
        if tmpl is None:
            tmpl = _RESET_TMPL[n] = (
                [None] * n, [0] * n, [S_WAITING] * n, [-1] * n)
        nones, zeros, waits, negs = tmpl
        s1 = s0 + n
        if s1 <= WINDOW:
            self.c_seq[s0:s1] = range(base + 1, base + 1 + n)
            self.c_inst[s0:s1] = all_insts
            self.c_row[s0:s1] = all_rows
            self.c_code[s0:s1] = all_codes
            self.c_group[s0:s1] = [group] * n
            self.c_state[s0:s1] = waits
            self.c_deps[s0:s1] = nones
            self.c_snap[s0:s1] = nones
            self.c_prednext[s0:s1] = nones
            self.c_cp[s0:s1] = nones
            self.c_buffer[s0:s1] = nones
            self.c_cpneed[s0:s1] = zeros
            self.c_known[s0:s1] = zeros
            self.c_fcycle[s0:s1] = [group.cycle] * n
            self.c_dcycle[s0:s1] = negs
            self.c_active[s0:s1] = act_flags
        else:
            k = WINDOW - s0
            t = s1 - WINDOW
            for col, vals in (
                (self.c_seq, list(range(base + 1, base + 1 + n))),
                (self.c_inst, all_insts),
                (self.c_row, all_rows),
                (self.c_code, all_codes),
                (self.c_group, [group] * n),
                (self.c_state, waits),
                (self.c_deps, nones),
                (self.c_snap, nones),
                (self.c_prednext, nones),
                (self.c_cp, nones),
                (self.c_buffer, nones),
                (self.c_cpneed, zeros),
                (self.c_known, zeros),
                (self.c_fcycle, [group.cycle] * n),
                (self.c_dcycle, negs),
                (self.c_active, act_flags),
            ):
                col[s0:] = vals[:k]
                col[:t] = vals[k:]

    def _enqueue_fetch(self, result: FetchResult, group: FetchGroup) -> None:
        active = result.active
        inactive = result.inactive
        n_act = len(active)
        all_insts = active + inactive if inactive else active
        n = len(all_insts)
        base = self.seq
        rob = self.rob
        if rob and base + n - rob[0] >= WINDOW:
            raise RuntimeError(
                f"window span overflow: seq {base + n} vs ROB head {rob[0]}")
        rows_cache = self._rows
        all_rows = []
        rows_append = all_rows.append
        for inst in all_insts:
            row = rows_cache.get(id(inst))
            if row is None:
                row = _decode_row(inst)
                rows_cache[id(inst)] = row
            rows_append(row)
        all_codes = [row[6] for row in all_rows]
        if inactive:
            act_flags = [1] * n_act + [0] * (n - n_act)
        else:
            act_flags = [1] * n_act
        s0 = (base + 1) & W_MASK
        self._reset_slots(s0, n, base, all_insts, all_rows, all_codes,
                          act_flags, group)
        # A non-None fetch direction marks exactly the conditional
        # branches (every engine fills active_dirs that way); prediction
        # records attach in order to the dynamic ones.  Each arm fills in
        # ALL the branch-metadata columns whose reads are branch-gated.
        rec_iter = iter(result.pred_records)
        active_promoted = result.active_promoted
        snapshot_get = result.control_snapshots.get
        c_cpneed = self.c_cpneed
        for idx, direction in enumerate(result.active_dirs):
            if direction is None:
                continue
            slot = (s0 + idx) & W_MASK
            if active_promoted[idx]:
                self.c_promoted[slot] = 1
                self.c_static[slot] = direction
                self.c_ptaken[slot] = None
            else:
                self.c_promoted[slot] = 0
                self.c_ptaken[slot] = direction
                c_cpneed[slot] = 1
                self.c_predrec[slot] = next(rec_iter, None)
            snapshot = snapshot_get(idx)
            if snapshot is not None:
                self.c_snap[slot] = snapshot
        # Attach the end-of-fetch bookkeeping to the last instruction: the
        # fetch's predicted successor doubles as the final block boundary's
        # checkpoint resume point, and for indirect jumps/returns it is the
        # target to verify at execute.
        last_seq = base + n_act
        last_slot = last_seq & W_MASK
        if result.next_pc is not None:
            self.c_prednext[last_slot] = result.next_pc
            c_cpneed[last_slot] = 1
        if inactive:
            inactive_promoted = result.inactive_promoted
            for idx, sdir in enumerate(result.inactive_dirs):
                if sdir is None:
                    continue
                slot = (s0 + n_act + idx) & W_MASK
                prom = inactive_promoted[idx]
                self.c_static[slot] = sdir
                self.c_promoted[slot] = prom
                self.c_ptaken[slot] = None
                self.c_predrec[slot] = None
                c_cpneed[slot] = 0 if prom else 1
            self.c_buffer[last_slot] = list(range(last_seq + 1, base + n + 1))
            self.result.inactive_issued += n - n_act
        self.dispatch_queue.extend(range(base + 1, base + n + 1))
        self.seq = base + n
        if result.ends_with_trap:
            for off in range(n_act):
                if active[off].op.opclass is OpClass.TRAP:
                    self.trap_pending = base + 1 + off
                    break
        if result.next_pc is None:
            self.misfetch_waiting = last_seq
        else:
            self.pc = result.next_pc

    # ---------------------------------------------------------------- finish

    def _finish(self) -> MachineResult:
        result = self.result
        result.cycles = self.cycle
        accounting = result.cycle_accounting
        if self.acc_traps:
            accounting[CycleCategory.TRAPS] += self.acc_traps
        if self.acc_misfetch:
            accounting[CycleCategory.MISFETCHES] += self.acc_misfetch
        if self.acc_branch_miss:
            accounting[CycleCategory.BRANCH_MISSES] += self.acc_branch_miss
        if self.acc_cache_miss:
            accounting[CycleCategory.CACHE_MISSES] += self.acc_cache_miss
        if self.acc_full_window:
            accounting[CycleCategory.FULL_WINDOW] += self.acc_full_window
        # Deferred classification of fetch cycles: useful vs wrong-path.
        for _cycle, group in self._fetch_cycle_groups:
            if group.retired_any:
                accounting[CycleCategory.USEFUL_FETCH] += 1
            else:
                accounting[CycleCategory.BRANCH_MISSES] += 1
        if self.fill_unit is not None:
            self.fill_unit.flush()
            result.fill_reasons = dict(self.fill_unit.finalize_reasons)
            if self.fill_unit.bias_table is not None:
                result.promotions = self.fill_unit.bias_table.promotions
                result.demotions = self.fill_unit.bias_table.demotions
        trace_cache = getattr(self.engine, "trace_cache", None)
        if trace_cache is not None:
            result.tc_hits = trace_cache.stats.hits
            result.tc_misses = trace_cache.stats.misses
        result.l1i_misses = self.engine.memory.l1i.stats.misses
        if self._memo is not None:
            stats = dict(self._memo_run_stats)
            stats["table"] = self._memo.stats()
            result.memo_stats = stats
        return result


def simulate(program: Program, config: MachineConfig,
             max_instructions: Optional[int] = 100_000) -> MachineResult:
    """Convenience wrapper: build a machine, run it, return the result."""
    return Machine(program, config, max_instructions=max_instructions).run()
