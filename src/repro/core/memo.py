"""Steady-state timing memoization for the columnar machine core.

The cycle-level machine spends most of its wall clock re-simulating
work it has already done: loop-dominated workloads re-execute the same
compiled machine plans (:func:`repro.core.machine._compile_machine_plan`)
from the same *pipeline context* over and over, and the trace-reuse
literature (arXiv 1711.06672) shows exactly this repetition dominates.
PR 4 exploited the repetition at the fetch level (CompiledVariant);
this module lifts it to the timing level.

A **span** is the stretch between two front-end fetch calls: it starts
when a fetch block enqueues through an existing compiled machine plan
and ends when the fetch stage next reaches ``engine.fetch``.  For each
span the machine records, keyed by ``(variant, predicted next_pc,
pipeline-context signature)``:

* the cycle delta and the stall-accounting increments,
* the retire-stream shape (how many ROB pops, commit vs. squash-pop),
* the memory-scheduler decision trace (per issued load, the forwarding
  match or the observed data-cache latency, plus the store-commit count
  at issue so the liveness horizon can be re-derived),
* the per-branch actual outcomes,
* the checkpoint creation points (with *net* store/load-queue deltas),
  and
* the **successor context** — the same normalized capture that forms
  the signature, reused both to patch the machine on a hit and as the
  ready-made lookup key for the next span (memo-edge chaining: steady
  state loop iterations fast-forward whole plan sequences without ever
  re-deriving a signature).

The context signature is position- and history-independent.  The ROB at
a fetch point is typically hundreds of records deep, but almost all of
it is a retirement backlog of DONE records waiting behind the head —
timing-inert except for the commit pacing near the head.  The capture
therefore keeps only:

* the ``seq % n_fus`` FU phase (FU binding is by absolute sequence),
* a bounded **head prefix** (:data:`PREFIX_K` records) of
  ``(class, commit-code, checkpoint?)`` triples — this pins the retire
  pacing, the store/load-queue commit pace and the checkpoint-drop
  schedule for every record a span can pop (:data:`MAX_POPS` <
  :data:`PREFIX_K`),
* the **live set**: every record whose state is neither DONE nor
  SQUASHED, as offset-relative tuples of (state, code, wiring, pending
  count, resolution-outcome bit, completion-cycle offset, dependent /
  dormant-buffer offsets) — the reservation stations, the completion
  wheel and every in-flight resolution hang off these few records —
  *except* **quiescent** records: an EXECUTING load whose completion
  lies more than :data:`QUIES_H` cycles out cannot finish inside any
  recordable span (spans are bounded to :data:`QUIES_H` cycles), so
  its counting-down finish offset — one distinct signature per cycle
  of a main-memory miss — is omitted and its state passes through a
  hit untouched; the rename map marks its register ``"Q"`` and replay
  re-wires the span's timing edges onto the hitting machine's own
  quiescent record,
* the live-producer rename map, and
* the checkpoint count (the dispatch gate only reads ``len``).

Everything else — register and memory values, the DONE middle of the
window, absolute queue contents — is deliberately excluded; replay
*verifies* the value-dependent decisions against the live machine
instead (see below), so a false signature match can only cost a
fallback, never corrupt state.

Replay is two-phase:

1. **Verify** (read-only): a shadow functional pass re-executes the
   plan's instructions against copies of the speculative state,
   checking every recorded branch outcome and indirect-target match.
   Each recorded load re-derives the memory scheduler's decision from
   the live store map: the recorded store-commit count at issue yields
   the oldest-live-store horizon, the span stores and the address
   bucket are walked youngest-first under that horizon, and the result
   must equal the recorded forwarding match.  Data-cache latencies are
   verified with *real* accesses made transactional (touched LRU sets
   and stats are saved and rolled back on mismatch).
2. **Apply**: the live enqueue runs (identical columns to a live
   fetch), the shadow results land in the window columns, the recorded
   ROB pops replay through the real ``_commit`` (so predictor training,
   fill-unit retirement, architectural state and the memory image see
   exactly the live side effects), and the surviving records are
   patched to the recorded successor: records present in the successor
   live set take its state, the rest are derived (a dormant record that
   vanished was squashed by its resolving branch, anything else
   completed), the reservation counts and ready heaps are rebuilt from
   the patched live set, and the completion wheel is filtered and
   re-derived so quiescent entries survive with their absolute finish
   cycles intact (the unknown-store heap is simply left in place —
   span stores are pushed at dispatch parity and staleness is lazily
   pruned).

Anything the signature cannot normalize — pending traps or misfetches,
inactive (dormant) issue in the plan, blocked loads, validation mode —
bails out to live simulation; any recovery, halt or memory-scheduler
block *during* a recorded span aborts the recording.  The scalar
(memo-off) path is the reference semantics and every hit is
byte-identical to it by construction; the parity suite and
``fuzz_frontend.py --mode machine`` race the two paths per seed.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from heapq import heappush
from typing import Optional

from repro.core.inflight import (
    Checkpoint,
    S_DORMANT, S_WAITING, S_READY, S_MEM_BLOCKED, S_EXECUTING,
    S_DONE, S_SQUASHED,
)
from repro.isa.instruction import NUM_REGS, REG_LINK
from repro.mem.hierarchy import WORD_BYTES

_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63
_TWO64 = 1 << 64

#: Quiescence horizon (cycles).  An EXECUTING record whose completion
#: lies more than this many cycles ahead is **quiescent**: it cannot
#: complete within any recordable span (:func:`finalize` rejects spans
#: longer than this), so its counting-down completion offset — pure
#: signature entropy, one distinct context per cycle of a main-memory
#: miss — is excluded from the live set and its state passes through a
#: hit untouched.  The value sits between the L2 latency (an in-span L2
#: miss must be able to complete without tripping the span-length
#: guard) and the main-memory latency (so memory misses are quiescent
#: for most of their flight).  Only loads can be quiescent: every other
#: op class executes in ``alu_latency``/``mul_latency`` cycles.
QUIES_H = 24

#: Spans that pop more than this many ROB records are not recorded.  The
#: bound must stay below :data:`PREFIX_K` so every popped record is
#: covered by the head-prefix part of the signature.
MAX_POPS = 64

#: Length of the head-prefix class string in the context signature.
PREFIX_K = 96

#: Window-occupancy gate (records).  When the fetch point sits more
#: than this far past the ROB head, the machine is in a stall regime —
#: a deep retirement backlog or a long dependence shadow — where
#: measured contexts essentially never recur (the live-set offsets
#: drift with the backlog depth); attempting a capture there is pure
#: overhead, so the memo layer steps aside cheaply.  Hits concentrate
#: below :data:`PREFIX_K` records of occupancy.
MAX_DEPTH = PREFIX_K

#: Adaptive give-up threshold: once a (variant, next-pc) pair has been
#: looked up this many times without a single hit, its contexts are
#: demonstrably non-recurring and the memo layer stops paying for
#: captures on it (the counter clears with the table, so a later phase
#: change gets a fresh audition after ``clear_caches``).
KEY_ATTEMPTS_MAX = 128

#: Run-level give-up: after this many misses, if fewer than one lookup
#: in four has hit, the workload's pipeline contexts are demonstrably
#: non-recurring and the memo layer turns itself off for the rest of
#: the run.  This bounds the worst-case overhead of the default-on knob
#: to a fixed prefix of the run, whatever the workload.
RUN_MISS_BUDGET = 512

#: Default memo-table capacity (entries, LRU-evicted).
DEFAULT_CAPACITY = 4096


def enabled() -> bool:
    """The ``REPRO_MACHINE_MEMO`` knob (default on)."""
    from repro.experiments import env
    return env.get_flag("REPRO_MACHINE_MEMO", True)


def capacity() -> int:
    """The ``REPRO_MACHINE_MEMO_MAX`` capacity knob."""
    from repro.experiments import env
    value = env.get_int("REPRO_MACHINE_MEMO_MAX", DEFAULT_CAPACITY)
    return max(1, value if value is not None else DEFAULT_CAPACITY)


# ---------------------------------------------------------------- tables

_TABLES: "weakref.WeakSet" = weakref.WeakSet()
_DEFAULT_TABLE: Optional["MemoTable"] = None


class MemoTable:
    """LRU-bounded map of (variant, next_pc, context) -> span entry.

    Keys hold the :class:`~repro.frontend.fetch.CompiledVariant` object
    itself (not its ``id``), so a recycled object identity can never
    alias a stale entry; the table's strong references are bounded by
    the LRU capacity and dropped by :func:`reset_tables` /
    ``runner.clear_caches()``.
    """

    def __init__(self, max_entries: Optional[int] = None):
        self.data: OrderedDict = OrderedDict()
        self.max_entries = max_entries if max_entries is not None else capacity()
        #: variant -> memoizable plan triage, computed once.
        self.plan_meta: dict = {}
        #: (variant, next_pc) -> [lookups, hits] adaptive give-up stats.
        self.key_stats: dict = {}
        self.stores = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0
        _TABLES.add(self)

    def get(self, key):
        entry = self.data.get(key)
        if entry is not None:
            self.data.move_to_end(key)
        return entry

    def put(self, key, entry) -> None:
        data = self.data
        if key in data:
            data[key] = entry
            data.move_to_end(key)
            return
        if len(data) >= self.max_entries:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = entry
        self.stores += 1

    def clear(self) -> None:
        self.data.clear()
        self.plan_meta.clear()
        self.key_stats.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self.data),
            "capacity": self.max_entries,
            "stores": self.stores,
            "evictions": self.evictions,
            "hits": self.hits,
            "misses": self.misses,
        }


def default_table() -> MemoTable:
    """The process-wide shared table (used when a machine is built
    without an explicit table; shared across runs and across the
    configs of a :func:`~repro.experiments.runner.run_machine_multi`
    batch — per-config variants never collide because the key holds
    the variant object)."""
    global _DEFAULT_TABLE
    if _DEFAULT_TABLE is None:
        _DEFAULT_TABLE = MemoTable()
    return _DEFAULT_TABLE


def reset_tables() -> None:
    """Drop every live table's entries (``runner.clear_caches()`` and
    the scheduler's pool-worker initializer call this; a reset is
    result-identical because entries only ever shortcut work)."""
    global _DEFAULT_TABLE
    for table in list(_TABLES):
        table.clear()
    _DEFAULT_TABLE = None


def aggregate_stats() -> dict:
    """Summed statistics over every live table (service ``status``)."""
    total = {"tables": 0, "entries": 0, "stores": 0, "evictions": 0,
             "hits": 0, "misses": 0}
    for table in list(_TABLES):
        stats = table.stats()
        total["tables"] += 1
        for field in ("entries", "stores", "evictions", "hits", "misses"):
            total[field] += stats[field]
    return total


# ------------------------------------------------------------- recording

class SpanRecorder:
    """Live bookkeeping for one span being recorded (miss path).

    Deliberately tiny: the hot stages only append to ``memops`` (memory
    scheduler decisions), append to ``cps`` (checkpoint creations) and
    bump ``store_pops`` (store commits); everything else is derived at
    finalize time from the columns, which are still intact because no
    slot can be recycled within a span.
    """

    __slots__ = ("key", "base", "cycle0", "head0", "rob_len0", "n",
                 "acc0", "lf0", "dc0", "retired0", "sq0", "lq0",
                 "store_pops", "memops", "cps")

    def __init__(self, m, key, n: int):
        self.key = key
        self.base = m.seq
        self.cycle0 = m.cycle
        self.head0 = m.rob[0] if m.rob else m.seq + 1
        self.rob_len0 = len(m.rob)
        self.n = n
        self.acc0 = (m.acc_traps, m.acc_misfetch, m.acc_branch_miss,
                     m.acc_cache_miss, m.acc_full_window)
        result = m.result
        self.lf0 = result.load_forwards
        self.dc0 = result.dcache_accesses
        self.retired0 = result.retired
        self.sq0 = len(m.store_queue)
        self.lq0 = len(m.load_queue)
        self.store_pops = 0
        self.memops: list = []
        self.cps: list = []


def record_load(m, rec: SpanRecorder, seq: int, match: int,
                latency: Optional[int]) -> None:
    """Log one issued load's memory-scheduler decision.

    ``match`` is the forwarding store seq (0 = none, i.e. a data-cache
    access of ``latency`` cycles).  ``store_pops`` — the number of
    stores committed since the span started — pins the oldest-live
    store horizon at issue time, from which replay re-derives the
    youngest-older-matching-store search against its own store map.
    """
    base = rec.base
    rec.memops.append((seq - base,
                       (match - base) if match else None,
                       rec.store_pops,
                       latency if not match else 0))


def record_checkpoint(m, rec: SpanRecorder, seq: int) -> None:
    """Log a checkpoint creation.  Store/load-queue lengths are *net
    deltas* against the span-start lengths: the head-prefix signature
    pins the in-span commit pace and the plan pins the appends, so the
    delta transfers to any machine the signature admits, whatever its
    absolute queue depths."""
    rec.cps.append((seq - rec.base,
                    len(m.store_queue) - rec.sq0,
                    len(m.load_queue) - rec.lq0))


def finalize(m, rec: SpanRecorder):
    """Close the span at the next fetch point; store the entry.

    Returns the successor context (which doubles as the next lookup
    signature) or None when the span is not storable.
    """
    d = m.cycle - rec.cycle0
    if d <= 0 or d > QUIES_H:
        # The span-length bound doubles as the quiescence guarantee: a
        # record whose completion sat more than QUIES_H cycles out at
        # span start provably did not complete inside this span.
        return None
    ctx = capture_context(m)
    if ctx is None:
        return None
    base = rec.base
    n = rec.n
    k_pop = rec.rob_len0 + n - len(m.rob)
    if k_pop < 0 or k_pop > MAX_POPS:
        return None
    # Quiescence-consistency guards.  The patch passes quiescent records
    # through untouched and derives a vanished near record as completed
    # (or squashed, for dormants) — both only sound when no record
    # crossed the near/quiescent boundary during the span.
    c_state = m.c_state
    start_live = rec.key[2][2]
    end_live = ctx[2]
    end_offs = {r[0] for r in end_live}
    start_offs = {r0[0] for r0 in start_live}
    for r in end_live:
        if r[0] + n < 1 and (r[0] + n) not in start_offs:
            return None  # quiescent at span start, near now
    for rec0 in start_live:
        st = c_state[(base + rec0[0]) & (len(m.c_seq) - 1)]
        if st != S_DONE and st != S_SQUASHED \
                and (rec0[0] - n) not in end_offs:
            return None  # near at span start, quiescent now
    for off in range(1, n + 1):
        st = c_state[(base + off) & (len(m.c_seq) - 1)]
        if st != S_DONE and st != S_SQUASHED \
                and (off - n) not in end_offs:
            return None  # span record issued onto a post-horizon latency
    # The popped records' slots are still intact (no recycling within a
    # span), so the commit-vs-squash pop pattern is read back from the
    # state column: commit leaves S_DONE, a squash-pop leaves S_SQUASHED.
    w_mask = len(m.c_seq) - 1
    c_state = m.c_state
    head0 = rec.head0
    pop_bits = tuple(
        c_state[(head0 + i) & w_mask] != S_SQUASHED for i in range(k_pop))
    plan = rec.key[0].machine_plan
    branch_bits = []
    c_taken = m.c_taken
    for meta in plan[5]:  # act_branches: (pos, dir, promoted, ...)
        slot = (base + 1 + meta[0]) & w_mask
        branch_bits.append((meta[0] + 1, c_taken[slot]))
    last_row = plan[2][-1]
    last_bit = None
    if last_row[6] == 5 or last_row[6] == 6:  # RET / JR ends the plan
        last_slot = (base + rec.n) & w_mask
        last_bit = (m.c_next[last_slot] == rec.key[1])
    acc0 = rec.acc0
    result = m.result
    entry = (
        ctx,
        d,
        pop_bits,
        (m.acc_traps - acc0[0], m.acc_misfetch - acc0[1],
         m.acc_branch_miss - acc0[2], m.acc_cache_miss - acc0[3],
         m.acc_full_window - acc0[4]),
        result.load_forwards - rec.lf0,
        result.dcache_accesses - rec.dc0,
        result.retired - rec.retired0,
        tuple(rec.memops),
        tuple(branch_bits),
        last_bit,
        tuple(rec.cps),
    )
    m._memo.put(rec.key, entry)
    return ctx


# ----------------------------------------------------------- the capture

def capture_context(m):
    """Normalize the timing-relevant pipeline state into a hashable,
    position- and backlog-independent tuple (the signature *and* the
    patch source).

    Sequence numbers are recorded relative to the fetch-point ``seq``
    and completion cycles relative to the fetch-point ``cycle``.  The
    DONE retirement backlog in the middle of the window is omitted
    entirely — it is timing-inert beyond the :data:`PREFIX_K`-record
    head prefix, which pins retire pacing and in-span commit side
    effects (every poppable record lies inside it).  Register and
    memory *values* are deliberately excluded — replay verifies the
    value-dependent decisions instead — but every value-dependent
    *decision already taken* by an unresolved in-flight instruction is
    folded in as an outcome bit (would this branch/indirect resolve
    clean?), because two contexts that will diverge on resolution must
    never share an entry.

    Returns None when the state has a shape the signature does not
    model (pending memory-scheduler blocks, stalled fetch state).
    """
    if (m.blocked_loads or m._mem_waiters or m.trap_pending is not None
            or m.misfetch_waiting is not None or m.redirect_bubble
            or m.icache_stall or m.pending_fetch is not None
            or m.dispatch_queue):
        return None
    base = m.seq
    if m.rob and base - m.rob[0] > MAX_DEPTH:
        return None  # stall regime: contexts there essentially never recur
    cycle = m.cycle
    w_mask = len(m.c_seq) - 1
    c_seq = m.c_seq
    c_state = m.c_state
    c_code = m.c_code
    c_active = m.c_active
    c_pending = m.c_pending
    c_known = m.c_known
    c_sqlive = m.c_sqlive
    c_promoted = m.c_promoted
    c_cp = m.c_cp
    c_deps = m.c_deps
    c_buffer = m.c_buffer
    c_taken = m.c_taken
    comp_at = {}
    for fc, done in m.completions.items():
        for s in done:
            comp_at[s] = fc
    quies = set()
    prefix = []
    prefix_append = prefix.append
    live = []
    idx = 0
    for seq in m.rob:
        slot = seq & w_mask
        st = c_state[slot]
        code = c_code[slot]
        cpf = 1 if c_cp[slot] is not None else 0
        if st == S_DONE:
            if idx < PREFIX_K:
                prefix_append((1, code, cpf))
        elif st == S_SQUASHED:
            if idx < PREFIX_K:
                prefix_append((2, code, cpf))
        else:
            if st == S_MEM_BLOCKED:
                return None  # parked with the memory scheduler
            if idx < PREFIX_K:
                prefix_append((0, code, cpf))
            dc = None
            if st == S_EXECUTING:
                fc = comp_at.get(seq)
                if fc is None:  # pragma: no cover - wheel invariant
                    return None
                dc = fc - cycle
                if dc > QUIES_H:
                    # Quiescent: cannot complete within any recordable
                    # span (finalize bounds spans to QUIES_H cycles), so
                    # its countdown is excluded from the signature and
                    # its state passes through a hit untouched.
                    quies.add(seq)
                    idx += 1
                    continue
            active = c_active[slot]
            prom = c_promoted[slot] if code == 3 else 0
            obit = None
            if active:
                if code == 3:
                    taken = c_taken[slot]
                    predicted = m.c_static[slot] if prom else m.c_ptaken[slot]
                    if taken is None or predicted is None:
                        return None  # unmodelled branch shape
                    obit = taken == predicted
                elif code == 5 or code == 6:
                    prednext = m.c_prednext[slot]
                    # prednext None = misfetch-style jump: resolution is
                    # a no-op (misfetch_waiting is clear), obit None.
                    if prednext is not None:
                        obit = m.c_next[slot] == prednext
            deps = c_deps[slot]
            dsig = None
            if deps:
                # Only WAITING dependents can ever be woken; squashed
                # leftovers are inert and would add spurious entropy.
                dsig = tuple(sorted(
                    s - base for s in deps
                    if c_state[s & w_mask] == S_WAITING)) or None
            buf = c_buffer[slot]
            live.append((
                seq - base, st, code, active,
                c_pending[slot] if st == S_WAITING else 0,
                c_known[slot], c_sqlive[slot], prom, cpf, obit, dc,
                tuple(s - base for s in buf) if buf else None,
                dsig,
            ))
        idx += 1
    if idx < PREFIX_K:
        prefix_append((3, 0, 0))  # terminal: window shorter than K
    rename = m.rename
    rename_sig = []
    for reg in range(NUM_REGS):
        pseq = rename[reg]
        if pseq and c_seq[pseq & w_mask] == pseq:
            pstate = c_state[pseq & w_mask]
            if pstate != S_DONE and pstate != S_SQUASHED:
                # A quiescent producer is position-independent: the
                # value is already in spec_regs (execution is eager),
                # only the *timing* edge matters, and dispatch counts
                # one pending edge per source read regardless of which
                # producer it lands on.  Replay re-wires the edge to
                # the hitting machine's own quiescent record.
                rename_sig.append("Q" if pseq in quies else pseq - base)
                continue
        rename_sig.append(None)
    return (
        base % m._n_fus,
        tuple(prefix),
        tuple(live),
        tuple(rename_sig),
        len(m.checkpoints),
    )


def _prefix_of(m) -> tuple:
    """The head-prefix component of :func:`capture_context`, alone.

    Used to rebuild a chained signature after a hit: the successor
    context's live set, rename map and checkpoint count transfer
    verbatim (their offsets are relative to the new fetch point), but
    its *prefix* reflects the recorded machine's retirement backlog,
    which this machine need not share — so it is re-read from the live
    window.
    """
    w_mask = len(m.c_seq) - 1
    c_state = m.c_state
    c_code = m.c_code
    c_cp = m.c_cp
    prefix = []
    idx = 0
    for seq in m.rob:
        if idx >= PREFIX_K:
            return tuple(prefix)
        slot = seq & w_mask
        st = c_state[slot]
        cls = 1 if st == S_DONE else 2 if st == S_SQUASHED else 0
        prefix.append((cls, c_code[slot], 1 if c_cp[slot] is not None else 0))
        idx += 1
    prefix.append((3, 0, 0))  # terminal: window shorter than K
    return tuple(prefix)


# ------------------------------------------------------------ the lookup

def plan_memoizable(table: MemoTable, variant) -> bool:
    """Triage a compiled plan once: spans are only memoized for fully
    active, trap/halt-free plans with a predicted successor."""
    meta = table.plan_meta.get(variant)
    if meta is None:
        plan = variant.machine_plan
        n_act, all_insts, _rows, all_codes = plan[0], plan[1], plan[2], plan[3]
        meta = (plan[7] < 0                      # no trap
                and len(all_insts) == n_act      # no inactive (dormant) tail
                and 7 not in all_codes and 8 not in all_codes)
        table.plan_meta[variant] = meta
    return meta


def on_variant_fetch(m, result, variant, group, entry_ghr, entry_ras,
                     sig) -> bool:
    """Memo hook at a compiled-variant fetch.  Returns True when a hit
    was applied (the caller skips the live enqueue); on False the live
    path runs, possibly with a fresh recording attached."""
    table = m._memo
    plan = variant.machine_plan
    stats = m._memo_run_stats
    if stats["misses"] >= RUN_MISS_BUDGET \
            and stats["hits"] * 4 < stats["misses"]:
        # Run-level give-up: this workload's contexts have demonstrably
        # not been recurring — stop paying for captures entirely.  (The
        # condition freezes itself: once lookups stop, the counters no
        # longer move.)
        stats["bailouts"] += 1
        return False
    # Pending promoted-fault overrides need no bail: the engine routes
    # any fetch whose segment contains an overridden branch through the
    # slow segment walk, which never yields a variant — a variant-served
    # fetch is provably unaffected.
    if (plan is None or result.next_pc is None
            or not plan_memoizable(table, variant)):
        stats["bailouts"] += 1
        return False
    kkey = (variant, result.next_pc)
    kstat = table.key_stats.get(kkey)
    if kstat is None:
        kstat = [0, 0]
        table.key_stats[kkey] = kstat
    elif kstat[0] >= KEY_ATTEMPTS_MAX and not kstat[1]:
        # This fetch point's contexts have demonstrably never recurred;
        # stop paying for captures on it.
        stats["bailouts"] += 1
        return False
    if sig is None:
        sig = capture_context(m)
        if sig is None:
            stats["bailouts"] += 1
            return False
    kstat[0] += 1
    key = (variant, result.next_pc, sig)
    entry = table.get(key)
    if entry is not None:
        retired_delta = entry[6]
        if ((m.max_instructions is not None
             and m.result.retired + retired_delta >= m.max_instructions)
                or m.cycle + entry[1] >= m._max_cycles):
            stats["bailouts"] += 1
            return False
        if _try_apply(m, result, variant, group, entry_ghr, entry_ras,
                      entry, plan, sig):
            table.hits += 1
            kstat[1] += 1
            stats["hits"] += 1
            stats["cycles_fast_forwarded"] += entry[1]
            stats["instructions_replayed"] += plan[0]
            if m._memo_chain_ok:
                end_ctx = entry[0]
                m._memo_sig = (m.seq % m._n_fus, _prefix_of(m),
                               end_ctx[2], end_ctx[3],
                               len(m.checkpoints))
            else:
                m._memo_sig = None
            return True
        stats["bailouts"] += 1
        return False
    table.misses += 1
    stats["misses"] += 1
    m._memo_rec = SpanRecorder(m, key, plan[0])
    return False


# -------------------------------------------------- verify + apply (hit)

def _tx_data_latency(m, word_addr: int, saves: list) -> int:
    """A real ``data_latency`` access with enough saved state to undo it.

    Mirrors :meth:`repro.mem.hierarchy.MemoryHierarchy.data_latency`'s
    address mapping; the touched LRU sets and the stats counters of both
    levels are pushed onto ``saves`` before the access so a latency
    mismatch can roll the whole verification back.
    """
    memory = m.engine.memory
    byte_addr = (word_addr * WORD_BYTES) | (1 << 40)
    for cache in (memory.l1d, memory.l2):
        index = (byte_addr >> cache._line_shift) & cache._set_mask
        stats = cache.stats
        saves.append((cache, index, list(cache._sets[index]),
                      stats.hits, stats.misses))
    return m._data_latency(word_addr)


def _tx_rollback(saves: list) -> None:
    for cache, index, ways, hits, misses in reversed(saves):
        cache._sets[index] = ways
        cache.stats.hits = hits
        cache.stats.misses = misses
    del saves[:]


def _try_apply(m, result, variant, group, entry_ghr, entry_ras,
               entry, plan, sig) -> bool:
    """Phase 1 verify + phase 2 apply of one memo entry.

    Returns False (machine untouched, caches rolled back) when any
    value-dependent decision diverges from the recording.
    """
    (end_ctx, d, pop_bits, acc_delta, lf_delta, dc_delta, _retired_delta,
     memops, branch_bits, last_bit, cps) = entry
    n = plan[0]
    all_rows = plan[2]
    base = m.seq
    cycle0 = m.cycle
    w_mask = len(m.c_seq) - 1

    # ---------------- phase 1: shadow functional pass (read-only) ----
    regs = list(m.spec_regs)
    rename = list(m.rename)
    vals: list = [None] * (n + 1)
    takens: list = [None] * (n + 1)
    mems: list = [None] * (n + 1)
    nexts: list = [None] * (n + 1)
    sq_new: list = []        # offs of in-span stores, dispatch order
    wires: list = []         # (pre-span producer seq, consumer off) reads
    cp_caps: dict = {}
    cp_offs = {c[0] for c in cps}
    c_seq = m.c_seq
    c_state = m.c_state
    c_sqlive = m.c_sqlive
    c_value = m.c_value
    store_map_get = m.store_map.get
    memory_get = m.memory_image.get
    for off in range(1, n + 1):
        row = all_rows[off - 1]
        kind = row[0]
        a = row[1]
        b = row[2]
        c = row[3]
        srcs = row[4]
        if srcs:
            # Mirror dispatch's dependence registration: one edge per
            # source read.  Only edges onto pre-span *quiescent*
            # producers are re-wired at apply time (near producers'
            # edges come from the successor context's dependent lists).
            for reg in srcs:
                pseq = rename[reg]
                if pseq and pseq <= base:
                    wires.append((pseq, off))
        value = None
        dest = None
        if kind == 1:    # ANDI
            value = regs[a] & b
            dest = c
        elif kind == 2:  # ADDI
            value = (regs[a] + b) & _MASK
            dest = c
        elif kind == 3:  # ADD
            value = (regs[a] + regs[b]) & _MASK
            dest = c
        elif kind == 4:  # LD
            mem_addr = (regs[a] + b) & _MASK
            mems[off] = mem_addr
            for soff in reversed(sq_new):
                if mems[soff] == mem_addr:
                    value = vals[soff]
                    break
            if value is None:
                bucket = store_map_get(mem_addr)
                if bucket:
                    for sseq in reversed(bucket):
                        sslot = sseq & w_mask
                        if c_seq[sslot] == sseq and c_sqlive[sslot] \
                                and c_state[sslot] != S_SQUASHED:
                            value = c_value[sslot] & _MASK
                            break
            if value is None:
                value = memory_get(mem_addr, 0) & _MASK
            dest = c
        elif kind == 5:  # BNE
            takens[off] = regs[a] != regs[b]
            nexts[off] = c if takens[off] else row[5]
        elif kind == 6:  # BEQ
            takens[off] = regs[a] == regs[b]
            nexts[off] = c if takens[off] else row[5]
        elif kind == 7:  # ST
            mem_addr = (regs[a] + b) & _MASK
            mems[off] = mem_addr
            vals[off] = regs[c] & _MASK
            sq_new.append(off)
        elif kind == 8:  # MUL
            value = (regs[a] * regs[b]) & _MASK
            dest = c
        elif kind == 9:  # AND
            value = regs[a] & regs[b]
            dest = c
        elif kind == 10:  # XOR
            value = regs[a] ^ regs[b]
            dest = c
        elif kind == 11:  # SUB
            value = (regs[a] - regs[b]) & _MASK
            dest = c
        elif kind == 12:  # SLTI
            x = regs[a]
            value = 1 if (x - _TWO64 if x & _SIGN_BIT else x) < b else 0
            dest = c
        elif kind == 13:  # OR
            value = regs[a] | regs[b]
            dest = c
        elif kind == 14:  # BLT
            x = regs[a]
            y = regs[b]
            takens[off] = (x - _TWO64 if x & _SIGN_BIT else x) \
                < (y - _TWO64 if y & _SIGN_BIT else y)
            nexts[off] = c if takens[off] else row[5]
        elif kind == 15:  # BGE
            x = regs[a]
            y = regs[b]
            takens[off] = (x - _TWO64 if x & _SIGN_BIT else x) \
                >= (y - _TWO64 if y & _SIGN_BIT else y)
            nexts[off] = c if takens[off] else row[5]
        elif kind == 16:  # SHL
            value = (regs[a] << (regs[b] & 63)) & _MASK
            dest = c
        elif kind == 17:  # SHR
            value = (regs[a] & _MASK) >> (regs[b] & 63)
            dest = c
        elif kind == 18:  # SLT
            x = regs[a]
            y = regs[b]
            value = 1 if (x - _TWO64 if x & _SIGN_BIT else x) \
                < (y - _TWO64 if y & _SIGN_BIT else y) else 0
            dest = c
        elif kind == 19:  # ORI
            value = regs[a] | b
            dest = c
        elif kind == 20:  # XORI
            value = regs[a] ^ b
            dest = c
        elif kind == 21:  # LUI
            value = b
            dest = c
        elif kind == 22:  # NOP / JMP (TRAP/HALT plans never memoize)
            pass
        elif kind == 23:  # CALL
            value = b
            dest = REG_LINK
        elif kind == 24:  # RET
            nexts[off] = regs[REG_LINK] & _MASK
        elif kind == 25:  # JR
            nexts[off] = regs[a] & _MASK
        else:  # pragma: no cover - exhaustive over the row kinds
            raise NotImplementedError(kind)
        if dest is not None:
            vals[off] = value
            regs[dest] = value
            rename[dest] = base + off
        if off in cp_offs:
            cp_caps[off] = (list(regs), list(rename))

    # Verify every in-span branch outcome against the recording.
    for boff, bit in branch_bits:
        if takens[boff] != bit:
            return False
    if last_bit is not None and (nexts[n] == result.next_pc) != last_bit:
        return False
    # Verify the memory-scheduler decisions in issue order.  For each
    # recorded load, the store-commit count at issue yields the oldest
    # store still live then (stores leave the queue front in order);
    # the youngest older live matching store under that horizon — span
    # stores first, then the address bucket — must equal the recorded
    # match, and pure data-cache loads must reproduce the recorded
    # latency with a real, transactional access.
    saves: list = []
    store_queue = m.store_queue
    nq0 = len(store_queue)
    sq0a = nq0                   # pre-span queue lengths for checkpoints
    lq0a = len(m.load_queue)
    for loff, moff, pops, latency in memops:
        if loff >= 1:
            addr = mems[loff]
        else:
            # A pre-span load issuing during the span: its address was
            # computed at its own (pre-span) dispatch, so read it from
            # the live column.  Span stores are all younger than it, so
            # the span-store scan below skips them automatically.
            addr = m.c_mem[(base + loff) & w_mask]
        if pops < nq0:
            horizon = store_queue[pops]
        else:
            j = pops - nq0
            # Commits beyond the pre-span queue consumed span stores in
            # dispatch order; a load can only issue after its horizon
            # store dispatched, so the index is always in range here.
            horizon = base + sq_new[j] if j < len(sq_new) else None
        derived = None
        if horizon is not None:
            for soff in reversed(sq_new):
                if soff >= loff:
                    continue
                sseq = base + soff
                if sseq < horizon:
                    break
                if mems[soff] == addr:
                    derived = sseq
                    break
            if derived is None:
                bucket = store_map_get(addr)
                if bucket:
                    for sseq in reversed(bucket):
                        if sseq < horizon:
                            break
                        sslot = sseq & w_mask
                        if c_seq[sslot] == sseq and c_sqlive[sslot] \
                                and c_state[sslot] != S_SQUASHED:
                            derived = sseq
                            break
        if derived != (None if moff is None else base + moff):
            _tx_rollback(saves)
            return False
        if moff is None:
            if _tx_data_latency(m, addr, saves) != latency:
                _tx_rollback(saves)
                return False

    # ------------------------- phase 2: apply ------------------------
    m._fetch_cycle_groups.append((cycle0, group))
    m._enqueue_variant(result, variant, group, entry_ghr, entry_ras)
    m.dispatch_queue.clear()
    rob = m.rob
    rob.extend(range(base + 1, base + n + 1))
    c_taken = m.c_taken
    c_next = m.c_next
    c_dcycle = m.c_dcycle
    store_queue = m.store_queue
    load_queue = m.load_queue
    store_map = m.store_map
    unknown_stores = m.unknown_stores
    track_unknown = not m._perfect_disamb
    for off in range(1, n + 1):
        slot = (base + off) & w_mask
        c_dcycle[slot] = cycle0
        value = vals[off]
        if value is not None:
            c_value[slot] = value
        taken = takens[off]
        if taken is not None:
            c_taken[slot] = taken
        nxt = nexts[off]
        if nxt is not None:
            c_next[slot] = nxt
        mem_addr = mems[off]
        if mem_addr is not None:
            m.c_mem[slot] = mem_addr
            code = m.c_code[slot]
            if code == 1:  # store
                store_queue.append(base + off)
                c_sqlive[slot] = 1
                if track_unknown:
                    # Dispatch parity: every tracked store enters the
                    # unknown-store heap; lazy pruning drops it once
                    # the patch marks it known.
                    heappush(unknown_stores, base + off)
                bucket = store_map.get(mem_addr)
                if bucket is None:
                    store_map[mem_addr] = [base + off]
                else:
                    bucket.append(base + off)
            else:          # load
                load_queue.append(base + off)
    engine = m.engine
    for coff, dsq, dlq in cps:
        seq = base + coff
        slot = seq & w_mask
        snap = m.c_snap[slot]
        if snap is not None:
            ghr_before, ras_state = snap
        else:
            ghr_before = engine.ghr.value
            ras_state = engine.ras.snapshot()
        inst = m.c_inst[slot]
        op = inst.op
        if op.is_cond_branch and m.c_ptaken[slot] is not None:
            resume_pc = inst.target if m.c_ptaken[slot] else inst.fall_through
        elif op.is_cond_branch and m.c_static[slot] is not None:
            resume_pc = inst.target if m.c_static[slot] else inst.fall_through
        elif m.c_prednext[slot] is not None:
            resume_pc = m.c_prednext[slot]
        else:
            resume_pc = inst.fall_through
        cap = cp_caps[coff]
        cp = Checkpoint(regs=cap[0], rename=cap[1], ghr_before=ghr_before,
                        ras_state=ras_state, sq_len=sq0a + dsq,
                        lq_len=lq0a + dlq, seq=seq, resume_pc=resume_pc)
        m.c_cp[slot] = cp
        m.checkpoints.append((seq, cp))
    m.spec_regs = regs
    m.rename = rename
    m.cycle = cycle0 + d
    # Replay the recorded retire stream through the real commit path so
    # predictor training, fill-unit retirement, architectural state and
    # the memory image see exactly the live side effects.
    commit = m._commit
    popleft = rob.popleft
    popped = set()
    for committed in pop_bits:
        head = rob[0]
        popleft()
        popped.add(head)
        if committed:
            commit(head, head & w_mask)
    _patch(m, base, n, sig[2], end_ctx, popped)
    # Re-wire the span's dependence edges onto this machine's own
    # quiescent producers (the recorded machine's were at different
    # seqs; the signature only pinned *which registers* were quiescent,
    # one edge per source read).  Near producers are skipped — the
    # patch installed their dependent lists from the successor context
    # — as are producers that were already done at dispatch time.
    start_offs = {r[0] for r in sig[2]}
    c_deps = m.c_deps
    for pseq, off in wires:
        if pseq - base in start_offs:
            continue
        pslot = pseq & w_mask
        if c_seq[pslot] != pseq:
            continue
        pst = c_state[pslot]
        if pst == S_DONE or pst == S_SQUASHED:
            continue
        pdeps = c_deps[pslot]
        if pdeps is None:
            c_deps[pslot] = [base + off]
        else:
            pdeps.append(base + off)
    m.acc_traps += acc_delta[0]
    m.acc_misfetch += acc_delta[1]
    m.acc_branch_miss += acc_delta[2]
    m.acc_cache_miss += acc_delta[3]
    m.acc_full_window += acc_delta[4]
    res = m.result
    res.load_forwards += lf_delta
    res.dcache_accesses += dc_delta
    return True


def _patch(m, base, n, start_live, end_ctx, popped) -> None:
    """Patch the surviving records to the recorded successor context.

    Records present in the successor live set take its state verbatim
    (offsets re-anchored to the new fetch point); a start-live record
    that vanished is derived — a dormant one was squashed by its
    resolving branch (mirror ``_squash_one``), anything else completed
    (mirror ``_complete``); span records that vanished completed too.
    The DONE backlog between head prefix and live set is untouched, as
    is every *quiescent* record (EXECUTING with its completion beyond
    the span horizon — absent from both live sets by construction).
    The reservation counts and ready heaps are rebuilt wholesale from
    the patched live set (both are lazily pruned, so dropping stale
    entries is behavior-identical); the completion wheel is filtered
    and re-derived so quiescent entries survive with their absolute
    finish cycles intact.
    """
    end_live = end_ctx[2]
    base_end = base + n
    w_mask = len(m.c_seq) - 1
    c_seq = m.c_seq
    c_state = m.c_state
    c_pending = m.c_pending
    c_known = m.c_known
    c_deps = m.c_deps
    c_buffer = m.c_buffer
    c_cp = m.c_cp
    c_code = m.c_code
    end_map = {r[0]: r for r in end_live}
    seen = 0
    for rec0 in start_live:
        seq = base + rec0[0]
        if seq in popped:
            continue
        slot = seq & w_mask
        if c_seq[slot] != seq:  # pragma: no cover - structural identity
            raise RuntimeError("memo patch: stale start-live slot")
        r = end_map.get(seq - base_end)
        if r is not None:
            seen += 1
            st = r[1]
            c_state[slot] = st
            if st == S_WAITING:
                c_pending[slot] = r[4]
            c_known[slot] = r[5]
            deps = r[12]
            c_deps[slot] = [base_end + o for o in deps] if deps else None
            buf = r[11]
            c_buffer[slot] = [base_end + o for o in buf] if buf else None
        elif rec0[1] == S_DORMANT:
            # Squashed by its branch's in-span correct resolution.
            c_state[slot] = S_SQUASHED
            c_deps[slot] = None
            c_cp[slot] = None
            c_buffer[slot] = None
        else:
            # Completed in-span.
            c_state[slot] = S_DONE
            c_deps[slot] = None
            code = c_code[slot]
            if code == 1:
                c_known[slot] = 1
            elif code == 3:
                c_buffer[slot] = None  # correct resolution drops it
    for off in range(1, n + 1):
        seq = base + off
        if seq in popped:
            continue
        slot = seq & w_mask
        r = end_map.get(seq - base_end)
        if r is not None:
            seen += 1
            st = r[1]
            c_state[slot] = st
            if st == S_WAITING:
                c_pending[slot] = r[4]
            c_known[slot] = r[5]
            deps = r[12]
            c_deps[slot] = [base_end + o for o in deps] if deps else None
            buf = r[11]
            c_buffer[slot] = [base_end + o for o in buf] if buf else None
        else:
            c_state[slot] = S_DONE
            c_deps[slot] = None
            code = c_code[slot]
            if code == 1:
                c_known[slot] = 1
            elif code == 3:
                c_buffer[slot] = None
    if seen != len(end_live):  # pragma: no cover - structural identity
        raise RuntimeError(
            f"memo patch: {len(end_live) - seen} unmatched live records")
    n_fus = m._n_fus
    rs_count = [0] * n_fus
    ready_total = 0
    heaps: list = [[] for _ in range(n_fus)]
    cycle = m.cycle
    for r in end_live:
        seq = r[0] + base_end
        st = r[1]
        if st < S_EXECUTING:
            rs_count[seq % n_fus] += 1
            if st == S_READY:
                ready_total += 1
                heaps[seq % n_fus].append(seq)
    for heap in heaps:
        heap.sort()  # a sorted list is a valid binary heap
    m.rs_count = rs_count
    m.ready_total = ready_total
    m.ready_heaps = heaps
    # Completion wheel: near entries are re-derived from the successor
    # context; quiescent entries — completions beyond the span horizon,
    # which the signature deliberately omits — pass through with their
    # absolute finish cycles intact.  Buckets at or before the new
    # cycle are in-span completions the patch already applied, or stale
    # leftovers of pre-span squashes the live path would have popped
    # and skipped during the span; a quiescent entry can never land
    # there (its finish lies > QUIES_H >= span length past the start).
    completions = m.completions
    start_exec = {base + r0[0] for r0 in start_live if r0[1] == S_EXECUTING}
    kept_min = None
    for fc in list(completions):
        if fc <= cycle:
            del completions[fc]
            continue
        bucket = [s for s in completions[fc] if s not in start_exec]
        if not bucket:
            del completions[fc]
            continue
        completions[fc] = bucket
        if kept_min is None or fc < kept_min:
            kept_min = fc
    for r in end_live:
        if r[1] == S_EXECUTING:
            seq = r[0] + base_end
            fc = cycle + r[10]
            bucket = completions.get(fc)
            if bucket is None:
                completions[fc] = [seq]
            else:
                bucket.append(seq)
    m.comp_cycles = sorted(completions)
    # The unknown-store heap is deliberately left alone: pre-span
    # entries (live or stale) are lazily pruned exactly as on the live
    # path, and the apply loop pushed the span stores at dispatch
    # parity.  Chaining the successor signature is sound only while
    # every preserved wheel entry is still beyond the quiescence
    # horizon — otherwise the next capture would classify as near a
    # record the chained signature omits.
    m._memo_chain_ok = kept_min is None or kept_min - cycle > QUIES_H
