"""Synthetic workloads standing in for SPECint95 + UNIX applications.

The paper simulates 15 benchmark binaries (Table 1).  Those binaries and
inputs are not available here, so this package generates seeded synthetic
programs whose *populations* of branches and blocks match each benchmark's
published character: static code footprint, fetch-block size, fraction of
strongly biased branches, loop structure, call behaviour, indirect-jump
frequency and data working set.  See DESIGN.md section 2 for the
substitution argument.
"""

from repro.workloads.builder import CodeBuilder, DataBuilder
from repro.workloads.behaviors import BranchBehavior, BranchKind
from repro.workloads.profiles import BenchmarkProfile, PROFILES, BENCHMARK_NAMES, get_profile
from repro.workloads.generator import generate_program, WorkloadGenerator
from repro.workloads.stats import WorkloadStats, characterize

__all__ = [
    "CodeBuilder",
    "DataBuilder",
    "BranchBehavior",
    "BranchKind",
    "BenchmarkProfile",
    "PROFILES",
    "BENCHMARK_NAMES",
    "get_profile",
    "generate_program",
    "WorkloadGenerator",
    "WorkloadStats",
    "characterize",
]
