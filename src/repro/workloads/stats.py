"""Workload characterization: measure what the generator actually produced.

Used by tests to assert each profile realizes its intended population (bias
mix, block sizes, instruction mix) and by the Table 1 bench to report the
suite inventory.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.experiments import columns
from repro.isa.executor import FunctionalExecutor, run_oracle
from repro.isa.opcodes import OpClass
from repro.isa.program import Program


@dataclass
class WorkloadStats:
    """Dynamic-stream statistics for one program run."""

    name: str
    dynamic_instructions: int = 0
    static_touched: int = 0
    static_total: int = 0
    cond_branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    calls: int = 0
    returns: int = 0
    indirect_jumps: int = 0
    traps: int = 0
    fetch_blocks: int = 0
    #: dynamic branch count per static branch site, and taken count
    site_executions: Dict[int, int] = field(default_factory=dict)
    site_taken: Dict[int, int] = field(default_factory=dict)
    block_size_histogram: Counter = field(default_factory=Counter)

    @property
    def avg_block_size(self) -> float:
        """Mean dynamic fetch-block size (instructions per control transfer)."""
        if not self.fetch_blocks:
            return 0.0
        return self.dynamic_instructions / self.fetch_blocks

    @property
    def taken_rate(self) -> float:
        return self.taken_branches / self.cond_branches if self.cond_branches else 0.0

    @property
    def cond_branch_frac(self) -> float:
        return self.cond_branches / self.dynamic_instructions if self.dynamic_instructions else 0.0

    @property
    def load_frac(self) -> float:
        return self.loads / self.dynamic_instructions if self.dynamic_instructions else 0.0

    @property
    def store_frac(self) -> float:
        return self.stores / self.dynamic_instructions if self.dynamic_instructions else 0.0

    def strongly_biased_dynamic_frac(self, threshold: float = 0.95) -> float:
        """Fraction of dynamic conditional branches from strongly biased sites.

        A site is strongly biased when its realized taken rate is >= threshold
        or <= 1 - threshold over the run (sites executed fewer than 8 times
        are ignored, matching how a bias table would never see them).
        """
        biased = 0
        total = 0
        for addr, count in self.site_executions.items():
            if count < 8:
                continue
            rate = self.site_taken.get(addr, 0) / count
            total += count
            if rate >= threshold or rate <= 1.0 - threshold:
                biased += count
        return biased / total if total else 0.0


def characterize(program: Program, max_instructions: Optional[int] = 50_000) -> WorkloadStats:
    """Run ``program`` functionally and collect :class:`WorkloadStats`.

    Under ``REPRO_VECTOR`` (the default, numpy present) the statistics
    come from column scans over the inlined oracle interpreter's stream;
    otherwise the original per-record walk runs.  Both paths produce
    identical stats — the differential fuzzer's vector mode checks them
    against each other.
    """
    if columns.enabled():
        return _characterize_columns(program, max_instructions)
    return _characterize_scalar(program, max_instructions)


def _characterize_columns(program: Program,
                          max_instructions: Optional[int]) -> WorkloadStats:
    """Vectorized :func:`characterize`: one flag gather + bincounts.

    The dynamic stream still comes from the (Python) oracle interpreter,
    but every per-record statistic — class counts, per-site execution
    and taken tallies, fetch-block segmentation, the block-size
    histogram — is a single array pass over the stream's columns.
    """
    from repro.experiments.tracefile import as_columns

    np = columns.np
    oracle = as_columns(run_oracle(program, max_instructions))
    addrs = columns.as_u32(oracle.addrs)
    dirs = columns.as_u8(oracle.dirs)
    stats = WorkloadStats(name=program.name, static_total=len(program))
    stats.dynamic_instructions = int(addrs.size)
    stats.static_touched = int(np.unique(addrs).size)
    commit = columns.program_flags(program).commit_codes[addrs]
    class_counts = np.bincount(commit, minlength=10).tolist()
    # Commit-code order: STORE=1, LOAD=2, COND_BRANCH=3, CALL=4,
    # RETURN=5, INDIRECT=6, TRAP=7 (see repro.isa.opcodes._COMMIT_CODE).
    stats.stores = int(class_counts[1])
    stats.loads = int(class_counts[2])
    stats.cond_branches = int(class_counts[3])
    stats.calls = int(class_counts[4])
    stats.returns = int(class_counts[5])
    stats.indirect_jumps = int(class_counts[6])
    stats.traps = int(class_counts[7])
    stats.taken_branches = int(np.count_nonzero(dirs == 1))
    sites, counts = columns.site_counts(addrs[columns.branch_mask(dirs)])
    stats.site_executions = dict(zip(sites.tolist(), counts.tolist()))
    sites, counts = columns.site_counts(addrs[dirs == 1])
    stats.site_taken = dict(zip(sites.tolist(), counts.tolist()))
    sizes = columns.fetch_block_sizes(addrs, program)
    stats.fetch_blocks = int(sizes.size)
    stats.block_size_histogram = columns.block_size_counter(addrs, program)
    return stats


def _characterize_scalar(program: Program,
                         max_instructions: Optional[int]) -> WorkloadStats:
    """The reference per-record statistics walk (``REPRO_VECTOR=0``)."""
    stats = WorkloadStats(name=program.name, static_total=len(program))
    executor = FunctionalExecutor(program, max_instructions=max_instructions)
    touched = set()
    block_len = 0
    for dyn in executor.run():
        inst = dyn.inst
        opclass = inst.op.opclass
        stats.dynamic_instructions += 1
        touched.add(inst.addr)
        block_len += 1
        if opclass is OpClass.LOAD:
            stats.loads += 1
        elif opclass is OpClass.STORE:
            stats.stores += 1
        elif opclass is OpClass.COND_BRANCH:
            stats.cond_branches += 1
            stats.site_executions[inst.addr] = stats.site_executions.get(inst.addr, 0) + 1
            if dyn.result.taken:
                stats.taken_branches += 1
                stats.site_taken[inst.addr] = stats.site_taken.get(inst.addr, 0) + 1
        elif opclass is OpClass.CALL:
            stats.calls += 1
        elif opclass is OpClass.RETURN:
            stats.returns += 1
        elif opclass is OpClass.INDIRECT:
            stats.indirect_jumps += 1
        elif opclass is OpClass.TRAP:
            stats.traps += 1
        if inst.op.ends_fetch_block:
            stats.fetch_blocks += 1
            stats.block_size_histogram[min(block_len, 16)] += 1
            block_len = 0
    stats.static_touched = len(touched)
    return stats
