"""Builders for emitting code and data with symbolic label fixups.

The generator needs to emit tens of thousands of instructions with forward
references (branch targets, jump tables pointing at code).  Assembling text
would work but is slow and awkward at that scale; these builders construct
:class:`~repro.isa.instruction.Instruction` objects directly and resolve
labels in one pass at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

#: A branch/jump target: either a resolved address or a label name.
Target = Union[int, str]


@dataclass
class _Pending:
    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: Union[int, str] = 0  # str = data label, resolved to a word address
    target: Optional[Target] = None


class CodeBuilder:
    """Accumulates instructions with symbolic targets, then resolves them."""

    def __init__(self):
        self._pending: List[_Pending] = []
        self._symbols: Dict[str, int] = {}
        self._label_counter = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def here(self) -> int:
        """Address of the next instruction to be emitted."""
        return len(self._pending)

    def new_label(self, prefix: str = "L") -> str:
        """A fresh, unique label name (not yet placed)."""
        self._label_counter += 1
        return f".{prefix}{self._label_counter}"

    def label(self, name: Optional[str] = None, prefix: str = "L") -> str:
        """Place ``name`` (or a fresh label) at the current address."""
        if name is None:
            name = self.new_label(prefix)
        if name in self._symbols:
            raise ValueError(f"label {name!r} already placed")
        self._symbols[name] = self.here
        return name

    # --- emission --------------------------------------------------------

    def emit(self, op: Opcode, rd: int = 0, rs1: int = 0, rs2: int = 0,
             imm: Union[int, str] = 0, target: Optional[Target] = None) -> int:
        """Append one instruction; returns its address."""
        addr = self.here
        self._pending.append(_Pending(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, target=target))
        return addr

    def addi(self, rd: int, rs1: int, imm: Union[int, str]) -> int:
        return self.emit(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)

    def load(self, rd: int, base: int, disp: Union[int, str] = 0) -> int:
        return self.emit(Opcode.LD, rd=rd, rs1=base, imm=disp)

    def store(self, rs_data: int, base: int, disp: Union[int, str] = 0) -> int:
        return self.emit(Opcode.ST, rs2=rs_data, rs1=base, imm=disp)

    def branch(self, op: Opcode, rs1: int, rs2: int, target: Target) -> int:
        if not op.is_cond_branch:
            raise ValueError(f"{op.mnemonic} is not a conditional branch")
        return self.emit(op, rs1=rs1, rs2=rs2, target=target)

    def jump(self, target: Target) -> int:
        return self.emit(Opcode.JMP, target=target)

    def call(self, target: Target) -> int:
        return self.emit(Opcode.CALL, target=target)

    def ret(self) -> int:
        return self.emit(Opcode.RET)

    def jr(self, rs1: int) -> int:
        return self.emit(Opcode.JR, rs1=rs1)

    # --- resolution --------------------------------------------------------

    def resolve(self) -> Tuple[List[Instruction], Dict[str, int]]:
        """Resolve all labels; returns (instructions, symbols)."""
        instructions: List[Instruction] = []
        for addr, pend in enumerate(self._pending):
            target = pend.target
            if isinstance(target, str):
                if target not in self._symbols:
                    raise ValueError(f"undefined code label {target!r} at {addr}")
                target = self._symbols[target]
            imm = pend.imm
            if isinstance(imm, str):
                raise ValueError(
                    f"unresolved data label {imm!r} at {addr}; bind data labels before resolve()"
                )
            instructions.append(
                Instruction(addr=addr, op=pend.op, rd=pend.rd, rs1=pend.rs1,
                            rs2=pend.rs2, imm=imm, target=target)
            )
        return instructions, dict(self._symbols)

    def bind_data_labels(self, data_symbols: Dict[str, int]) -> None:
        """Replace string immediates with data word addresses."""
        for addr, pend in enumerate(self._pending):
            if isinstance(pend.imm, str):
                if pend.imm not in data_symbols:
                    raise ValueError(f"undefined data label {pend.imm!r} at {addr}")
                pend.imm = data_symbols[pend.imm]

    def address_of(self, label: str) -> int:
        return self._symbols[label]


class DataBuilder:
    """Accumulates the initial data image and jump tables."""

    def __init__(self):
        self._data: Dict[int, int] = {}
        self._symbols: Dict[str, int] = {}
        self._cursor = 0
        # jump tables: (word address, list of code labels) patched after code resolve
        self._tables: List[Tuple[int, List[str]]] = []

    @property
    def cursor(self) -> int:
        return self._cursor

    def array(self, name: str, values: Sequence[int]) -> int:
        """Place a labelled word array; returns its word address."""
        if name in self._symbols:
            raise ValueError(f"data label {name!r} already placed")
        base = self._cursor
        self._symbols[name] = base
        for offset, value in enumerate(values):
            if value:
                self._data[base + offset] = int(value)
        self._cursor += len(values)
        return base

    def space(self, name: str, count: int) -> int:
        """Reserve ``count`` zeroed words under ``name``."""
        return self.array(name, [0] * count)

    def jump_table(self, name: str, case_labels: Sequence[str]) -> int:
        """Place a table of code addresses, patched after code layout."""
        base = self.space(name, len(case_labels))
        self._tables.append((base, list(case_labels)))
        return base

    def patch_tables(self, code_symbols: Dict[str, int]) -> None:
        for base, labels in self._tables:
            for offset, label in enumerate(labels):
                if label not in code_symbols:
                    raise ValueError(f"jump table entry {label!r} undefined")
                self._data[base + offset] = code_symbols[label]

    @property
    def symbols(self) -> Dict[str, int]:
        return dict(self._symbols)

    @property
    def image(self) -> Dict[int, int]:
        return dict(self._data)


def finish_program(code: CodeBuilder, data: DataBuilder, name: str, entry_label: str = "main") -> Program:
    """Resolve builders into a validated :class:`Program`."""
    code.bind_data_labels(data.symbols)
    instructions, symbols = code.resolve()
    data.patch_tables(symbols)
    program = Program(
        instructions=instructions,
        entry=symbols.get(entry_label, 0),
        data=data.image,
        symbols=symbols,
        data_symbols=data.symbols,
        name=name,
    )
    program.validate_targets()
    return program
