"""Branch behaviour models for the synthetic workload generator.

A generated conditional branch gets its dynamic behaviour from a small data
array: the condition register is loaded from ``array[step & (period-1)]``
where ``step`` advances once per loop iteration, so the branch's outcome
sequence is the array read cyclically.  The *run structure* of the array —
not just its ones-fraction — is what drives the paper's phenomena:

* promotion requires long consecutive same-direction runs (>= threshold),
  so strongly biased branches place their rare minority outcomes in one or
  two small clusters, like real error-check branches;
* *nearly* biased branches have majority runs of ~60-120: long enough to
  promote at threshold 64, too short for 128+ — and their minority
  clusters (2+ consecutive) trigger demotion.  This reproduces the
  ``plot`` benchmark's premature-promotion faulting (paper Fig. 7);
* moderate branches use short periods (8-32), making them learnable by a
  history-based predictor after warmup, like real correlated branches;
* hard branches use long pseudo-random periods — effectively
  unpredictable, like data-dependent search branches in ``go``;
* phase-flip branches are pure one direction until the program's mutator
  inverts their array, exercising demote-then-repromote dynamics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

try:  # only annotations and the caller-provided rng touch numpy here
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    np = None


class BranchKind(enum.Enum):
    """Behaviour classes for generated data-dependent branches."""

    ALWAYS_TAKEN = "always_taken"
    ALWAYS_NOT_TAKEN = "always_not_taken"
    STRONGLY_BIASED = "strongly_biased"  # long runs; promotes at any threshold
    NEARLY_BIASED = "nearly_biased"      # runs ~60-120; premature-promotion prone
    MODERATE = "moderate"                # short learnable patterns
    HARD = "hard"                        # effectively random
    PHASE_FLIP = "phase_flip"            # pure bias that inverts mid-run


@dataclass(frozen=True)
class BranchBehavior:
    """A sampled behaviour: kind plus concrete array parameters."""

    kind: BranchKind
    p_taken: float
    #: period of the underlying data array (power of two).
    period: int
    #: minority outcomes are grouped into this many clusters (0 = scatter).
    clusters: int = 0

    @property
    def is_strongly_biased(self) -> bool:
        return self.p_taken >= 0.95 or self.p_taken <= 0.05


def sample_behavior(kind: BranchKind, rng: np.random.Generator) -> BranchBehavior:
    """Draw a concrete behaviour of the given kind."""
    flip = rng.random() < 0.5
    if kind is BranchKind.ALWAYS_TAKEN:
        return BranchBehavior(kind, 1.0, 8)
    if kind is BranchKind.ALWAYS_NOT_TAKEN:
        return BranchBehavior(kind, 0.0, 8)
    if kind is BranchKind.STRONGLY_BIASED:
        p = float(rng.uniform(0.97, 0.995))
        period = int(2 ** rng.integers(8, 10))  # 256 or 512: runs >= ~120
        return BranchBehavior(kind, 1.0 - p if flip else p, period, clusters=int(rng.integers(1, 3)))
    if kind is BranchKind.NEARLY_BIASED:
        p = float(rng.uniform(0.95, 0.98))
        period = int(2 ** rng.integers(7, 9))   # 128 or 256: runs ~60-120
        return BranchBehavior(kind, 1.0 - p if flip else p, period, clusters=2)
    if kind is BranchKind.MODERATE:
        # Clustered minorities give runs of ~5-25 consecutive outcomes, so
        # the direction is stable across nearby loop iterations (keeping
        # stored trace paths fresh) yet the pattern stays short enough for
        # a history predictor to learn.
        p = float(rng.uniform(0.68, 0.88))
        period = int(2 ** rng.integers(4, 7))   # 16..64
        return BranchBehavior(kind, 1.0 - p if flip else p, period,
                              clusters=int(rng.integers(1, 4)))
    if kind is BranchKind.HARD:
        # Not a coin flip: real "hard" branches still lean one way (a 2-bit
        # counter gets ~70% right), but their pattern is too long-period
        # for global history to learn in a scaled-down run.
        p = float(rng.uniform(0.62, 0.75))
        period = int(2 ** rng.integers(7, 11))  # long pseudo-random sequence
        return BranchBehavior(kind, 1.0 - p if flip else p, period)
    if kind is BranchKind.PHASE_FLIP:
        p = 1.0 if not flip else 0.0
        return BranchBehavior(kind, p, 64)
    raise ValueError(kind)  # pragma: no cover - exhaustive


def realize_array(behavior: BranchBehavior, rng: np.random.Generator) -> List[int]:
    """Fill the behaviour's data array with 0/1 words.

    A ``1`` entry makes the canonical condition (``BNE value, r0``) taken,
    so the fraction of ones equals ``p_taken`` and the arrangement follows
    the behaviour's run structure.
    """
    n = behavior.period
    p = behavior.p_taken
    if p >= 1.0:
        return [1] * n
    if p <= 0.0:
        return [0] * n
    majority = 1 if p >= 0.5 else 0
    minority = 1 - majority
    minority_count = max(1, round(n * (1.0 - p if majority else p)))
    minority_count = min(minority_count, n - 1)
    values = [majority] * n

    if behavior.clusters > 0:
        # Rare events arrive in bursts: split the minority outcomes into
        # clusters spaced evenly, leaving long majority runs between them.
        clusters = min(behavior.clusters, minority_count)
        base, extra = divmod(minority_count, clusters)
        start = int(rng.integers(0, n))
        for c in range(clusters):
            size = base + (1 if c < extra else 0)
            offset = start + (c * n) // clusters
            for k in range(size):
                values[(offset + k) % n] = minority
    else:
        positions = rng.choice(n, size=minority_count, replace=False)
        for pos in positions:
            values[int(pos)] = minority
    return values


def mix_counts(total: int, fractions: dict, rng: np.random.Generator) -> List[BranchKind]:
    """Expand a {kind: fraction} mix into a shuffled list of ``total`` kinds."""
    kinds: List[BranchKind] = []
    items = sorted(fractions.items(), key=lambda kv: kv[0].value)
    for kind, fraction in items:
        kinds.extend([kind] * int(round(fraction * total)))
    while len(kinds) < total:
        kinds.append(items[-1][0])
    kinds = kinds[:total]
    rng.shuffle(kinds)
    return kinds
