"""Per-benchmark generation profiles (the paper's Table 1 suite).

Each profile parameterizes the synthetic generator so that the produced
program's *population statistics* — static footprint, dynamic block sizes,
branch bias mix, call/indirect density, data working set — match the
published character of the corresponding SPECint95 / UNIX benchmark.  The
exact numbers are not (and cannot be) the paper's; the profiles are chosen
so the qualitative orderings the paper relies on hold:

* gcc/go/tex/vortex/gs/python have static footprints that pressure a 128KB
  trace cache, so they are the Table 4 (packing redundancy) benchmarks;
* compress/m88ksim/pgp/ijpeg are tight-loop codes with high branch bias;
* li/perl/python are interpreters: short blocks, dense calls and indirect
  jumps;
* gnuplot gets a large population of *nearly* biased branches plus bias
  phase flips, reproducing its promotion-faulting behaviour (Figure 7);
* go/gnuchess get hard, weakly biased search branches.

Every phase contains a *hot kernel* — a small loop executed many times per
visit — so dynamic execution follows the 90/10 rule: hot branch sites run
often enough (hundreds of executions in a scaled-down run) for the bias
table to promote them at the paper's thresholds, while the cold phase
bodies supply trace-cache capacity pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.behaviors import BranchKind


@dataclass(frozen=True)
class BenchmarkProfile:
    """Knobs for :func:`repro.workloads.generator.generate_program`."""

    name: str
    #: Dynamic instruction count the paper simulated (millions), Table 1.
    paper_inst_count_m: int
    #: Input set named by the paper's Table 1 ("" when unlisted).
    input_set: str
    description: str
    seed: int

    # --- static shape ---------------------------------------------------
    n_phases: int
    stmts_per_phase: Tuple[int, int]
    n_utilities: int
    utility_stmts: Tuple[int, int]

    # --- dynamic shape ----------------------------------------------------
    outer_iters: int
    phase_trip: Tuple[int, int]       # phase main-loop trip count range
    inner_loop_trip: Tuple[int, int]  # nested loop trip count range
    hot_stmts: Tuple[int, int]        # statements in each phase's hot kernel
    hot_trip: Tuple[int, int]         # hot kernel trip count range

    # --- statement mix (probabilities; block fills the remainder) --------
    p_if: float
    p_loop: float
    p_call: float
    p_switch: float
    p_store: float
    p_trap: float

    # --- code texture -----------------------------------------------------
    block_len: Tuple[int, int]        # straightline run length range
    mem_in_block: float               # probability a block slot is a LD
    late_cond_frac: float             # conditions data-chained behind work loads
    late_store_frac: float            # stores whose address depends on a load
    switch_cases: Tuple[int, int]

    # --- branch population -------------------------------------------------
    bias_mix: Dict[BranchKind, float]

    # --- memory -----------------------------------------------------------
    working_set_words: int

    # --- run scaling --------------------------------------------------------
    #: Default dynamic-instruction budget for benchmark harness runs.
    default_dynamic: int = 120_000

    #: fraction of if-sites whose condition thresholds the phase's shared
    #: context array (mutually correlated branches, global-history friendly)
    correlated_frac: float = 0.45

    @property
    def has_phase_flips(self) -> bool:
        return self.bias_mix.get(BranchKind.PHASE_FLIP, 0.0) > 0.0


def _mix(always: float, strong: float, nearly: float, moderate: float,
         hard: float, flip: float = 0.0) -> Dict[BranchKind, float]:
    total = always + strong + nearly + moderate + hard + flip
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"bias mix sums to {total}")
    mix = {
        BranchKind.ALWAYS_TAKEN: always / 2,
        BranchKind.ALWAYS_NOT_TAKEN: always / 2,
        BranchKind.STRONGLY_BIASED: strong,
        BranchKind.NEARLY_BIASED: nearly,
        BranchKind.MODERATE: moderate,
        BranchKind.HARD: hard,
    }
    if flip:
        mix[BranchKind.PHASE_FLIP] = flip
    return mix


PROFILES: Dict[str, BenchmarkProfile] = {}


def _register(profile: BenchmarkProfile) -> None:
    if profile.name in PROFILES:
        raise ValueError(f"duplicate profile {profile.name}")
    PROFILES[profile.name] = profile


_register(BenchmarkProfile(
    name="compress", paper_inst_count_m=95, input_set="test.in (30000 elems)",
    description="LZW compression: tiny kernel looping over a hash table",
    seed=1001,
    n_phases=4, stmts_per_phase=(26, 40), n_utilities=4, utility_stmts=(3, 6),
    outer_iters=400, phase_trip=(2, 4), inner_loop_trip=(3, 8),
    hot_stmts=(5, 9), hot_trip=(80, 200),
    p_if=0.54, p_loop=0.05, p_call=0.05, p_switch=0.01, p_store=0.12, p_trap=0.001,
    block_len=(1, 3), mem_in_block=0.30, late_cond_frac=0.30, late_store_frac=0.25,
    switch_cases=(3, 5),
    bias_mix=_mix(always=0.24, strong=0.38, nearly=0.10, moderate=0.18, hard=0.10),
    working_set_words=1 << 14,
))

_register(BenchmarkProfile(
    name="gcc", paper_inst_count_m=157, input_set="jump.i",
    description="optimizing compiler: huge code footprint, short blocks",
    seed=1002,
    n_phases=16, stmts_per_phase=(85, 125), n_utilities=30, utility_stmts=(4, 9),
    outer_iters=40, phase_trip=(3, 5), inner_loop_trip=(2, 6),
    hot_stmts=(5, 9), hot_trip=(90, 220),
    p_if=0.54, p_loop=0.05, p_call=0.08, p_switch=0.03, p_store=0.12, p_trap=0.002,
    block_len=(1, 3), mem_in_block=0.32, late_cond_frac=0.35, late_store_frac=0.30,
    switch_cases=(4, 9),
    bias_mix=_mix(always=0.18, strong=0.32, nearly=0.10, moderate=0.22, hard=0.18),
    working_set_words=1 << 17,
    default_dynamic=300_000,
))

_register(BenchmarkProfile(
    name="go", paper_inst_count_m=151, input_set="2stone9.in",
    description="game tree search: large code, notoriously hard branches",
    seed=1003,
    n_phases=13, stmts_per_phase=(75, 115), n_utilities=24, utility_stmts=(4, 8),
    outer_iters=40, phase_trip=(3, 5), inner_loop_trip=(2, 6),
    hot_stmts=(5, 9), hot_trip=(70, 180),
    p_if=0.54, p_loop=0.05, p_call=0.06, p_switch=0.01, p_store=0.10, p_trap=0.001,
    block_len=(1, 3), mem_in_block=0.28, late_cond_frac=0.30, late_store_frac=0.20,
    switch_cases=(3, 6),
    bias_mix=_mix(always=0.14, strong=0.28, nearly=0.10, moderate=0.22, hard=0.26),
    working_set_words=1 << 15,
    default_dynamic=300_000,
))

_register(BenchmarkProfile(
    name="ijpeg", paper_inst_count_m=500, input_set="penguin.ppm",
    description="image compression: long DSP-like blocks, deep loops",
    seed=1004,
    n_phases=8, stmts_per_phase=(40, 60), n_utilities=8, utility_stmts=(5, 10),
    outer_iters=200, phase_trip=(2, 5), inner_loop_trip=(4, 12),
    hot_stmts=(6, 10), hot_trip=(100, 260),
    p_if=0.28, p_loop=0.09, p_call=0.04, p_switch=0.005, p_store=0.14, p_trap=0.001,
    block_len=(3, 9), mem_in_block=0.34, late_cond_frac=0.20, late_store_frac=0.25,
    switch_cases=(3, 5),
    bias_mix=_mix(always=0.28, strong=0.40, nearly=0.08, moderate=0.14, hard=0.10),
    working_set_words=1 << 16,
))

_register(BenchmarkProfile(
    name="li", paper_inst_count_m=500, input_set="train.lsp",
    description="lisp interpreter: tiny blocks, dense calls and dispatch",
    seed=1005,
    n_phases=6, stmts_per_phase=(32, 50), n_utilities=16, utility_stmts=(3, 7),
    outer_iters=300, phase_trip=(2, 5), inner_loop_trip=(2, 5),
    hot_stmts=(4, 8), hot_trip=(70, 180),
    p_if=0.54, p_loop=0.03, p_call=0.14, p_switch=0.04, p_store=0.10, p_trap=0.002,
    block_len=(1, 3), mem_in_block=0.34, late_cond_frac=0.30, late_store_frac=0.20,
    switch_cases=(4, 8),
    bias_mix=_mix(always=0.30, strong=0.40, nearly=0.08, moderate=0.14, hard=0.08),
    working_set_words=1 << 14,
))

_register(BenchmarkProfile(
    name="m88ksim", paper_inst_count_m=493, input_set="dhry.test",
    description="CPU simulator: dominant decode loop, very biased branches",
    seed=1006,
    n_phases=6, stmts_per_phase=(32, 50), n_utilities=8, utility_stmts=(4, 8),
    outer_iters=300, phase_trip=(2, 5), inner_loop_trip=(3, 8),
    hot_stmts=(5, 9), hot_trip=(100, 260),
    p_if=0.52, p_loop=0.04, p_call=0.07, p_switch=0.02, p_store=0.10, p_trap=0.002,
    block_len=(1, 3), mem_in_block=0.30, late_cond_frac=0.25, late_store_frac=0.20,
    switch_cases=(4, 8),
    bias_mix=_mix(always=0.36, strong=0.42, nearly=0.06, moderate=0.10, hard=0.06),
    working_set_words=1 << 14,
))

_register(BenchmarkProfile(
    name="perl", paper_inst_count_m=41, input_set="scrabbl.pl",
    description="perl interpreter: opcode dispatch, many indirect jumps",
    seed=1007,
    n_phases=12, stmts_per_phase=(50, 75), n_utilities=20, utility_stmts=(3, 7),
    outer_iters=120, phase_trip=(2, 4), inner_loop_trip=(2, 6),
    hot_stmts=(4, 8), hot_trip=(70, 180),
    p_if=0.52, p_loop=0.04, p_call=0.10, p_switch=0.06, p_store=0.11, p_trap=0.002,
    block_len=(1, 3), mem_in_block=0.32, late_cond_frac=0.30, late_store_frac=0.25,
    switch_cases=(5, 10),
    bias_mix=_mix(always=0.28, strong=0.40, nearly=0.08, moderate=0.16, hard=0.08),
    working_set_words=1 << 15,
))

_register(BenchmarkProfile(
    name="vortex", paper_inst_count_m=214, input_set="vortex.in",
    description="OO database: big footprint, call-heavy, well-biased",
    seed=1008,
    n_phases=12, stmts_per_phase=(65, 100), n_utilities=22, utility_stmts=(4, 9),
    outer_iters=60, phase_trip=(3, 5), inner_loop_trip=(2, 6),
    hot_stmts=(5, 9), hot_trip=(70, 180),
    p_if=0.48, p_loop=0.04, p_call=0.13, p_switch=0.02, p_store=0.14, p_trap=0.002,
    block_len=(1, 3), mem_in_block=0.34, late_cond_frac=0.25, late_store_frac=0.30,
    switch_cases=(3, 7),
    bias_mix=_mix(always=0.28, strong=0.38, nearly=0.08, moderate=0.16, hard=0.10),
    working_set_words=1 << 17,
    default_dynamic=300_000,
))

_register(BenchmarkProfile(
    name="gnuchess", paper_inst_count_m=119, input_set="",
    description="chess search: evaluation loops, mixed-quality branches",
    seed=1009,
    n_phases=10, stmts_per_phase=(50, 80), n_utilities=14, utility_stmts=(4, 8),
    outer_iters=120, phase_trip=(2, 5), inner_loop_trip=(2, 7),
    hot_stmts=(5, 9), hot_trip=(70, 180),
    p_if=0.54, p_loop=0.06, p_call=0.07, p_switch=0.01, p_store=0.10, p_trap=0.001,
    block_len=(1, 3), mem_in_block=0.28, late_cond_frac=0.30, late_store_frac=0.20,
    switch_cases=(3, 6),
    bias_mix=_mix(always=0.24, strong=0.36, nearly=0.10, moderate=0.18, hard=0.12),
    working_set_words=1 << 15,
))

_register(BenchmarkProfile(
    name="gs", paper_inst_count_m=180, input_set="",
    description="ghostscript: large interpreter + rasterizer footprint",
    seed=1010,
    n_phases=11, stmts_per_phase=(65, 100), n_utilities=20, utility_stmts=(4, 8),
    outer_iters=60, phase_trip=(3, 5), inner_loop_trip=(3, 8),
    hot_stmts=(5, 9), hot_trip=(70, 180),
    p_if=0.50, p_loop=0.06, p_call=0.09, p_switch=0.03, p_store=0.12, p_trap=0.003,
    block_len=(1, 3), mem_in_block=0.30, late_cond_frac=0.25, late_store_frac=0.25,
    switch_cases=(4, 8),
    bias_mix=_mix(always=0.24, strong=0.36, nearly=0.10, moderate=0.18, hard=0.12),
    working_set_words=1 << 16,
    default_dynamic=300_000,
))

_register(BenchmarkProfile(
    name="pgp", paper_inst_count_m=322, input_set="",
    description="crypto: multiply-heavy kernels, long biased loops",
    seed=1011,
    n_phases=6, stmts_per_phase=(36, 55), n_utilities=6, utility_stmts=(5, 10),
    outer_iters=250, phase_trip=(2, 5), inner_loop_trip=(4, 10),
    hot_stmts=(6, 10), hot_trip=(100, 260),
    p_if=0.30, p_loop=0.07, p_call=0.05, p_switch=0.005, p_store=0.11, p_trap=0.001,
    block_len=(3, 8), mem_in_block=0.26, late_cond_frac=0.20, late_store_frac=0.20,
    switch_cases=(3, 5),
    bias_mix=_mix(always=0.28, strong=0.42, nearly=0.08, moderate=0.14, hard=0.08),
    working_set_words=1 << 14,
))

_register(BenchmarkProfile(
    name="python", paper_inst_count_m=220, input_set="",
    description="python interpreter: bytecode dispatch, big footprint",
    seed=1012,
    n_phases=10, stmts_per_phase=(60, 90), n_utilities=18, utility_stmts=(3, 7),
    outer_iters=70, phase_trip=(3, 5), inner_loop_trip=(2, 6),
    hot_stmts=(4, 8), hot_trip=(70, 180),
    p_if=0.54, p_loop=0.04, p_call=0.11, p_switch=0.05, p_store=0.11, p_trap=0.002,
    block_len=(1, 3), mem_in_block=0.34, late_cond_frac=0.30, late_store_frac=0.25,
    switch_cases=(5, 10),
    bias_mix=_mix(always=0.28, strong=0.38, nearly=0.08, moderate=0.16, hard=0.10),
    working_set_words=1 << 16,
    default_dynamic=300_000,
))

_register(BenchmarkProfile(
    name="plot", paper_inst_count_m=284, input_set="",
    description="gnuplot: biased-but-flaky branches; promotion-fault prone",
    seed=1013,
    n_phases=10, stmts_per_phase=(45, 70), n_utilities=12, utility_stmts=(4, 8),
    outer_iters=120, phase_trip=(2, 5), inner_loop_trip=(3, 8),
    hot_stmts=(5, 9), hot_trip=(70, 180),
    p_if=0.52, p_loop=0.06, p_call=0.07, p_switch=0.01, p_store=0.11, p_trap=0.001,
    block_len=(1, 3), mem_in_block=0.28, late_cond_frac=0.25, late_store_frac=0.20,
    switch_cases=(3, 6),
    bias_mix=_mix(always=0.14, strong=0.22, nearly=0.36, moderate=0.14, hard=0.06,
                  flip=0.08),
    working_set_words=1 << 15,
))

_register(BenchmarkProfile(
    name="ss", paper_inst_count_m=100, input_set="",
    description="sim-outorder (SimpleScalar): event loops over big structs",
    seed=1014,
    n_phases=14, stmts_per_phase=(55, 85), n_utilities=18, utility_stmts=(4, 8),
    outer_iters=90, phase_trip=(2, 4), inner_loop_trip=(2, 7),
    hot_stmts=(5, 9), hot_trip=(70, 180),
    p_if=0.52, p_loop=0.05, p_call=0.09, p_switch=0.03, p_store=0.12, p_trap=0.002,
    block_len=(1, 3), mem_in_block=0.32, late_cond_frac=0.30, late_store_frac=0.25,
    switch_cases=(4, 8),
    bias_mix=_mix(always=0.24, strong=0.36, nearly=0.10, moderate=0.18, hard=0.12),
    working_set_words=1 << 16,
))

_register(BenchmarkProfile(
    name="tex", paper_inst_count_m=164, input_set="",
    description="TeX: sprawling paragraph/line-break code, worst packing redundancy",
    seed=1015,
    n_phases=14, stmts_per_phase=(75, 110), n_utilities=26, utility_stmts=(4, 9),
    outer_iters=50, phase_trip=(3, 5), inner_loop_trip=(2, 6),
    hot_stmts=(5, 9), hot_trip=(70, 180),
    p_if=0.52, p_loop=0.05, p_call=0.08, p_switch=0.02, p_store=0.12, p_trap=0.002,
    block_len=(1, 3), mem_in_block=0.30, late_cond_frac=0.25, late_store_frac=0.25,
    switch_cases=(4, 8),
    bias_mix=_mix(always=0.24, strong=0.36, nearly=0.10, moderate=0.18, hard=0.12),
    working_set_words=1 << 16,
    default_dynamic=300_000,
))

#: Paper-order benchmark names (the order used on every figure's x-axis).
BENCHMARK_NAMES: List[str] = [
    "compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex",
    "gnuchess", "gs", "pgp", "python", "plot", "ss", "tex",
]

#: The Table 4 subset: benchmarks with significant trace-cache miss traffic.
TABLE4_BENCHMARKS: List[str] = ["gcc", "go", "vortex", "gs", "python", "tex"]


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
