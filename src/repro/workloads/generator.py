"""Synthetic benchmark program generator.

Produces real, terminating programs in the simulator ISA from a
:class:`~repro.workloads.profiles.BenchmarkProfile`.  The generated code is
structured like the benchmark family it stands in for:

* ``main`` loops over a sequence of *phase* functions (compiler passes,
  interpreter opcodes, pipeline stages ...), giving large-footprint
  benchmarks their phase-cycling trace-cache pressure;
* each phase is a counted loop over a body of statements: straightline
  blocks, data-dependent if/else, nested counted loops, calls into shared
  utility functions, switch dispatch through jump tables, stores and traps;
* every conditional branch reads its condition from a per-site bias array
  (see :mod:`repro.workloads.behaviors`), so the dynamic branch population
  has a controlled bias mix;
* branch conditions and store addresses are optionally data-chained behind
  loads from the working-set array, producing realistic misprediction
  resolution times and memory-disambiguation stalls.

Register conventions (generated code only):

====== =======================================================
r0     zero
r1-r8  statement scratch, also used by utility functions
r10    phase main-loop counter
r11/12 nested-loop counters (depth 1 / 2)
r15    outer-loop counter in ``main``
r17    global step counter (drives all bias-array indexing)
r20-27 global accumulators (cross-statement dataflow)
r30    stack pointer, r31 link register
====== =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

try:  # numpy backs the generator's RNG; the import error is deferred to
    # WorkloadGenerator so the package stays importable without numpy.
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    np = None

from repro.isa.executor import STACK_BASE
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.workloads.behaviors import (
    BranchBehavior,
    BranchKind,
    realize_array,
    sample_behavior,
)
from repro.workloads.builder import CodeBuilder, DataBuilder, finish_program
from repro.workloads.profiles import BenchmarkProfile, get_profile

_SCRATCH = list(range(1, 9))
_ACCUMULATORS = list(range(20, 28))
_ALU_OPS = [Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR]
_BIASED_BRANCH_OPS = [Opcode.BNE, Opcode.BEQ]


@dataclass
class _SiteInfo:
    """Metadata for one generated data-dependent branch site."""

    addr: int
    behavior: BranchBehavior
    flips: bool


class WorkloadGenerator:
    """Generates one program from a profile; retains site metadata."""

    def __init__(self, profile: BenchmarkProfile, seed: Optional[int] = None):
        if np is None:
            raise RuntimeError(
                "workload generation requires numpy (install the [vector] "
                "extra or numpy itself)")
        self.profile = profile
        self.rng = np.random.default_rng(profile.seed if seed is None else seed)
        self.code = CodeBuilder()
        self.data = DataBuilder()
        self.sites: List[_SiteInfo] = []
        self._site_counter = 0
        self._flip_sites: List[str] = []  # data labels of phase-flip arrays
        self._ctx_counter = 0
        self._current_ctx = None  # (label, period) of the active context array
        self._kinds = list(profile.bias_mix.keys())
        self._kind_weights = np.array([profile.bias_mix[k] for k in self._kinds])
        self._kind_weights = self._kind_weights / self._kind_weights.sum()
        self._ws_mask = profile.working_set_words - 1
        if profile.working_set_words & self._ws_mask:
            raise ValueError("working_set_words must be a power of two")

    # ------------------------------------------------------------------ API

    def generate(self) -> Program:
        """Build and return the complete program."""
        profile = self.profile
        self.data.array(
            "work",
            [int(v) for v in self.rng.integers(0, 256, size=min(profile.working_set_words, 1 << 16))]
            + [0] * max(0, profile.working_set_words - (1 << 16)),
        )

        utility_labels = self._build_utilities()
        phase_labels = [
            self._build_phase(i, utility_labels) for i in range(profile.n_phases)
        ]
        mutate_label = self._build_mutator() if self._needs_mutator() else None
        self._build_main(phase_labels, mutate_label)
        return finish_program(self.code, self.data, name=profile.name)

    # --------------------------------------------------------------- pieces

    def _needs_mutator(self) -> bool:
        return self.profile.has_phase_flips

    def _build_main(self, phase_labels: Sequence[str], mutate_label: Optional[str]) -> None:
        code = self.code
        code.label("main")
        code.addi(30, 0, STACK_BASE)
        code.addi(17, 0, 0)
        code.addi(18, 0, 2654435761)  # Knuth hash constant for work-array scatter
        for index, reg in enumerate(_ACCUMULATORS):
            code.addi(reg, 0, index + 1)
        code.addi(15, 0, self.profile.outer_iters)
        outer = code.label(prefix="outer")
        for label in phase_labels:
            code.call(label)
        if mutate_label is not None:
            code.call(mutate_label)
        code.addi(16, 16, 1)
        code.addi(15, 15, -1)
        code.branch(Opcode.BNE, 15, 0, outer)
        code.emit(Opcode.HALT)

    def _build_utilities(self) -> List[str]:
        """Two tiers: tier-1 may call tier-2 leaves."""
        profile = self.profile
        rng = self.rng
        n = profile.n_utilities
        n_leaf = max(1, n // 2)
        leaf_labels = [f"util_leaf_{i}" for i in range(n_leaf)]
        for label in leaf_labels:
            self._build_function(label, is_leaf=True, callees=[],
                                 stmt_range=profile.utility_stmts, loop=False)
        mid_labels = [f"util_{i}" for i in range(n - n_leaf)]
        for label in mid_labels:
            callees = list(rng.choice(leaf_labels, size=min(2, n_leaf), replace=False))
            self._build_function(label, is_leaf=False, callees=callees,
                                 stmt_range=profile.utility_stmts, loop=False)
        return mid_labels + leaf_labels

    def _build_phase(self, index: int, utilities: Sequence[str]) -> str:
        rng = self.rng
        n_callees = int(rng.integers(2, min(6, len(utilities) + 1))) if utilities else 0
        callees = list(rng.choice(utilities, size=n_callees, replace=False)) if n_callees else []
        label = f"phase_{index}"
        self._current_ctx = self._new_context_array()
        self._build_function(label, is_leaf=False, callees=callees,
                             stmt_range=self.profile.stmts_per_phase, loop=True,
                             hot_kernel=True)
        return label

    def _build_function(self, label: str, is_leaf: bool, callees: Sequence[str],
                        stmt_range, loop: bool, hot_kernel: bool = False) -> None:
        # Loop counters r10-r13 belong to phase functions; utilities must
        # not emit loop statements or they would clobber their caller's
        # counters (utilities only ever use scratch r1-r8).
        code = self.code
        rng = self.rng
        code.label(label)
        if not is_leaf:
            code.addi(30, 30, -1)
            code.store(31, 30, 0)
        n_stmts = int(rng.integers(stmt_range[0], stmt_range[1] + 1))
        if loop:
            trip = int(rng.integers(self.profile.phase_trip[0], self.profile.phase_trip[1] + 1))
            code.addi(10, 0, trip)
            top = code.label(prefix="ploop")
            # Cold body: broad code executed once per phase-loop iteration.
            first_half = n_stmts // 2
            self._emit_statements(first_half, callees, depth=0, allow_loops=True)
            if hot_kernel:
                self._emit_hot_kernel(callees)
            self._emit_statements(n_stmts - first_half, callees, depth=0, allow_loops=True)
            code.addi(17, 17, 1)
            code.addi(10, 10, -1)
            code.branch(Opcode.BNE, 10, 0, top)
        else:
            self._emit_statements(n_stmts, callees, depth=0, allow_loops=False)
        if not is_leaf:
            code.load(31, 30, 0)
            code.addi(30, 30, 1)
        code.ret()

    def _emit_hot_kernel(self, callees: Sequence[str]) -> None:
        """The phase's hot loop: a small statement body iterated many times.

        Real programs concentrate most dynamic branch executions in a small
        set of hot sites (the 90/10 rule); these kernels give the bias
        table per-site execution counts high enough for promotion at the
        paper's thresholds, while the cold phase bodies provide the static
        footprint that pressures the trace cache.
        """
        code = self.code
        rng = self.rng
        profile = self.profile
        trip = int(rng.integers(profile.hot_trip[0], profile.hot_trip[1] + 1))
        n_stmts = int(rng.integers(profile.hot_stmts[0], profile.hot_stmts[1] + 1))
        code.addi(13, 0, trip)
        top = code.label(prefix="hot")
        self._emit_statements(n_stmts, callees, depth=0, allow_loops=True)
        code.addi(17, 17, 1)
        code.addi(13, 13, -1)
        code.branch(Opcode.BNE, 13, 0, top)

    def _build_mutator(self) -> str:
        """Invert the arrays of every phase-flip site, flipping their bias."""
        code = self.code
        label = "mutate_flips"
        code.label(label)
        for array_label in self._flip_sites:
            period = 64  # all flip arrays use a fixed small period
            code.addi(10, 0, period)
            top = code.label(prefix="mloop")
            code.addi(1, 10, -1)
            code.load(2, 1, array_label)
            code.emit(Opcode.XORI, rd=2, rs1=2, imm=1)
            code.store(2, 1, array_label)
            code.addi(10, 10, -1)
            code.branch(Opcode.BNE, 10, 0, top)
        code.ret()
        return label

    # ----------------------------------------------------------- statements

    def _emit_statements(self, count: int, callees: Sequence[str], depth: int,
                         allow_loops: bool = True) -> None:
        profile = self.profile
        rng = self.rng
        for _ in range(count):
            roll = rng.random()
            threshold = profile.p_if
            if roll < threshold:
                self._stmt_if()
                continue
            threshold += profile.p_loop
            if roll < threshold and depth < 2 and allow_loops:
                self._stmt_loop(callees, depth)
                continue
            threshold += profile.p_call
            if roll < threshold and callees:
                self.code.call(str(rng.choice(callees)))
                continue
            threshold += profile.p_switch
            if roll < threshold:
                self._stmt_switch()
                continue
            threshold += profile.p_store
            if roll < threshold:
                self._stmt_store()
                continue
            threshold += profile.p_trap
            if roll < threshold:
                self.code.emit(Opcode.TRAP)
                continue
            self._stmt_block()

    def _emit_work_index(self, dest: int) -> None:
        """Compute a work-array index into ``dest``.

        Most sites walk a hot region that fits in the L1 D-cache; a minority
        hash-scatter across the full working set, giving large-working-set
        profiles realistic miss rates.
        """
        code = self.code
        rng = self.rng
        offset = int(rng.integers(0, 1 << 12))
        code.addi(dest, 17, offset)
        if rng.random() < 0.3:
            code.emit(Opcode.MUL, rd=dest, rs1=dest, rs2=18)
            mask = self._ws_mask
        else:
            mask = min(self.profile.working_set_words, 2048) - 1
        code.emit(Opcode.ANDI, rd=dest, rs1=dest, imm=mask)

    def _stmt_block(self, length: Optional[int] = None) -> None:
        """A straightline run of ALU work with embedded loads."""
        code = self.code
        rng = self.rng
        profile = self.profile
        if length is None:
            length = int(rng.integers(profile.block_len[0], profile.block_len[1] + 1))
        emitted = 0
        while emitted < length:
            if rng.random() < profile.mem_in_block and emitted + 2 <= length:
                index_reg = int(rng.choice(_SCRATCH[:4]))
                value_reg = int(rng.choice(_SCRATCH[4:]))
                self._emit_work_index(index_reg)
                code.load(value_reg, index_reg, "work")
                emitted += 2
            else:
                op = Opcode.MUL if rng.random() < 0.06 else _ALU_OPS[int(rng.integers(0, len(_ALU_OPS)))]
                rd = int(rng.choice(_SCRATCH))
                rs1 = int(rng.choice(_SCRATCH + _ACCUMULATORS))
                rs2 = int(rng.choice(_SCRATCH))
                code.emit(op, rd=rd, rs1=rs1, rs2=rs2)
                emitted += 1
        if rng.random() < 0.3:
            acc = int(rng.choice(_ACCUMULATORS))
            src = int(rng.choice(_SCRATCH))
            code.emit(Opcode.ADD, rd=acc, rs1=acc, rs2=src)

    def _new_context_array(self) -> tuple:
        """A shared, slowly varying array of small values (0..7).

        Several branch sites in the same phase test this one array against
        different thresholds, so their outcomes are mutually correlated —
        the property that makes global-history predictors work on real
        code.  The values follow a clipped random walk, giving runs of
        equal values (stable branch directions across nearby iterations).
        """
        rng = self.rng
        period = int(2 ** rng.integers(6, 9))  # 64..256
        values = []
        v = int(rng.integers(0, 8))
        for _ in range(period):
            if rng.random() < 0.15:
                v = min(7, max(0, v + int(rng.integers(-2, 3))))
            values.append(v)
        label = f"ctx_{self._ctx_counter}"
        self._ctx_counter += 1
        self.data.array(label, values)
        return label, period

    def _stmt_if_correlated(self) -> None:
        """An if whose condition thresholds the phase's shared context."""
        code = self.code
        rng = self.rng
        label, period = self._current_ctx
        # Skew thresholds toward the extremes: most correlated branches are
        # biased (crossed rarely by the value walk), a minority are mid-range.
        threshold = int(rng.choice([1, 2, 3, 4, 5, 6, 7],
                                   p=[0.28, 0.17, 0.05, 0.0, 0.05, 0.17, 0.28]))
        code.emit(Opcode.ANDI, rd=1, rs1=17, imm=period - 1)
        code.load(2, 1, label)
        code.emit(Opcode.SLTI, rd=3, rs1=2, imm=threshold)
        op = _BIASED_BRANCH_OPS[int(rng.integers(0, 2))]  # BNE: taken iff v < k
        skip = code.new_label("endif")
        code.branch(op, 3, 0, skip)
        self._stmt_block()
        code.label(skip)

    def _new_site(self) -> tuple:
        """Allocate a bias array for a fresh branch site.

        Returns (data label, behavior, branch opcode).  The array's ones
        fraction is arranged so the chosen opcode's taken rate equals the
        behaviour's ``p_taken``.
        """
        rng = self.rng
        kind = self._kinds[int(rng.choice(len(self._kinds), p=self._kind_weights))]
        behavior = sample_behavior(kind, rng)
        op = _BIASED_BRANCH_OPS[int(rng.integers(0, 2))]
        ones_fraction = behavior.p_taken if op is Opcode.BNE else 1.0 - behavior.p_taken
        array = realize_array(
            BranchBehavior(kind=kind, p_taken=ones_fraction, period=behavior.period,
                           clusters=behavior.clusters),
            rng,
        )
        label = f"bias_{self._site_counter}"
        self._site_counter += 1
        self.data.array(label, array)
        if kind is BranchKind.PHASE_FLIP:
            self._flip_sites.append(label)
        return label, behavior, op

    def _emit_condition(self, array_label: str, period: int) -> int:
        """Load the site's condition value; returns the register holding it."""
        code = self.code
        rng = self.rng
        code.emit(Opcode.ANDI, rd=1, rs1=17, imm=period - 1)
        code.load(2, 1, array_label)
        if rng.random() < self.profile.late_cond_frac:
            # Chain the condition behind a working-set load without
            # changing its value: (work_value & 0) + cond == cond.
            self._emit_work_index(3)
            code.load(4, 3, "work")
            code.emit(Opcode.AND, rd=4, rs1=4, rs2=0)
            code.emit(Opcode.ADD, rd=2, rs1=2, rs2=4)
        return 2

    def _stmt_if(self) -> None:
        code = self.code
        rng = self.rng
        if self._current_ctx is not None and rng.random() < self.profile.correlated_frac:
            self._stmt_if_correlated()
            return
        array_label, behavior, op = self._new_site()
        cond_reg = self._emit_condition(array_label, behavior.period)
        skip = code.new_label("else" if rng.random() < 0.4 else "endif")
        branch_addr = code.branch(op, cond_reg, 0, skip)
        self.sites.append(_SiteInfo(addr=branch_addr, behavior=behavior,
                                    flips=behavior.kind is BranchKind.PHASE_FLIP))
        self._stmt_block()
        if skip.startswith(".else"):
            endif = code.new_label("endif")
            code.jump(endif)
            code.label(skip)
            self._stmt_block()
            code.label(endif)
        else:
            code.label(skip)

    def _stmt_loop(self, callees: Sequence[str], depth: int) -> None:
        code = self.code
        rng = self.rng
        counter = 11 + depth
        trip = int(rng.integers(self.profile.inner_loop_trip[0],
                                self.profile.inner_loop_trip[1] + 1))
        code.addi(counter, 0, trip)
        top = code.label(prefix="iloop")
        n_body = int(rng.integers(1, 4))
        self._emit_statements(n_body, callees, depth=depth + 1, allow_loops=True)
        code.addi(17, 17, 1)
        code.addi(counter, counter, -1)
        code.branch(Opcode.BNE, counter, 0, top)

    def _stmt_switch(self) -> None:
        code = self.code
        rng = self.rng
        profile = self.profile
        n_cases = int(rng.integers(profile.switch_cases[0], profile.switch_cases[1] + 1))
        period = int(2 ** rng.integers(5, 9))
        # Zipf-skewed case selection, like interpreter opcode frequencies.
        weights = 1.0 / np.arange(1, n_cases + 1)
        weights /= weights.sum()
        values = rng.choice(n_cases, size=period, p=weights)
        site_id = self._site_counter
        self._site_counter += 1
        case_label_names = [f".case_{site_id}_{c}" for c in range(n_cases)]
        self.data.array(f"cases_{site_id}", [int(v) for v in values])
        self.data.jump_table(f"jt_{site_id}", case_label_names)
        offset = int(rng.integers(0, 1 << 12))
        code.addi(1, 17, offset)
        code.emit(Opcode.ANDI, rd=1, rs1=1, imm=period - 1)
        code.load(2, 1, f"cases_{site_id}")
        code.load(3, 2, f"jt_{site_id}")
        code.jr(3)
        merge = code.new_label("merge")
        for name in case_label_names:
            code.label(name)
            self._stmt_block(length=int(rng.integers(1, 5)))
            code.jump(merge)
        code.label(merge)

    def _stmt_store(self) -> None:
        code = self.code
        rng = self.rng
        value_reg = int(rng.choice(_ACCUMULATORS))
        if rng.random() < self.profile.late_store_frac:
            # Store whose address depends on a load: the conservative memory
            # scheduler must block younger loads until this address resolves.
            self._emit_work_index(1)
            code.load(2, 1, "work")
            code.emit(Opcode.ANDI, rd=2, rs1=2, imm=self._ws_mask)
            code.store(value_reg, 2, "work")
        else:
            self._emit_work_index(1)
            code.store(value_reg, 1, "work")


def generate_program(benchmark: str, seed: Optional[int] = None) -> Program:
    """Generate the synthetic stand-in program for a paper benchmark."""
    profile = benchmark if isinstance(benchmark, BenchmarkProfile) else get_profile(benchmark)
    return WorkloadGenerator(profile, seed=seed).generate()
