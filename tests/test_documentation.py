"""Documentation hygiene: every public item carries a docstring, and the
repository documents what it promises."""

import importlib
import inspect
import pathlib

import pytest

PACKAGES = [
    "repro",
    "repro.isa", "repro.isa.assembler", "repro.isa.executor",
    "repro.isa.instruction", "repro.isa.opcodes", "repro.isa.program",
    "repro.workloads", "repro.workloads.behaviors", "repro.workloads.builder",
    "repro.workloads.generator", "repro.workloads.profiles", "repro.workloads.stats",
    "repro.branch", "repro.branch.counters", "repro.branch.gshare",
    "repro.branch.history", "repro.branch.hybrid", "repro.branch.indirect",
    "repro.branch.multiple", "repro.branch.pas", "repro.branch.ras",
    "repro.branch.reference",
    "repro.mem", "repro.mem.cache", "repro.mem.hierarchy",
    "repro.trace", "repro.trace.bias_table", "repro.trace.fill_unit",
    "repro.trace.fill_unit_reference",
    "repro.trace.segment", "repro.trace.static_promotion", "repro.trace.trace_cache",
    "repro.frontend", "repro.frontend.build", "repro.frontend.fetch",
    "repro.frontend.fetch_reference",
    "repro.frontend.simulator", "repro.frontend.stats",
    "repro.core", "repro.core.inflight", "repro.core.machine",
    "repro.experiments", "repro.experiments.paper", "repro.experiments.runner",
    "repro.experiments.seeds", "repro.experiments.scheduler",
    "repro.experiments.faults", "repro.experiments.checkpoint",
    "repro.experiments.diskcache", "repro.experiments.tracefile",
    "repro.experiments.warnonce", "repro.experiments.cachekey",
    "repro.experiments.serialize", "repro.experiments.env",
    "repro.service", "repro.service.protocol", "repro.service.breaker",
    "repro.service.coalesce", "repro.service.server", "repro.service.client",
    "repro.service.fleet", "repro.service.worker", "repro.service.events",
    "repro.validate", "repro.validate.errors", "repro.validate.digests",
    "repro.validate.observer", "repro.validate.lockstep",
    "repro.validate.report",
    "repro.analysis", "repro.analysis.branches", "repro.analysis.tracecache",
    "repro.analysis.timeline",
    "repro.report", "repro.report.tables",
    "repro.config",
]

REPO = pathlib.Path(__file__).parent.parent


@pytest.mark.parametrize("name", PACKAGES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        attr = getattr(module, attr_name)
        if getattr(attr, "__module__", None) != name:
            continue  # re-exported from elsewhere
        if inspect.isclass(attr) or inspect.isfunction(attr):
            if not (attr.__doc__ and attr.__doc__.strip()):
                undocumented.append(attr_name)
    assert not undocumented, f"{name}: undocumented public items {undocumented}"


def test_required_documents_exist():
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "MODEL.md"):
        path = REPO / doc
        assert path.exists() and path.stat().st_size > 1_000, doc


def test_design_covers_every_experiment():
    text = (REPO / "DESIGN.md").read_text()
    for artifact in ("Table 1", "Table 2", "Table 3", "Table 4", "Figure 4",
                     "Figure 7", "Figure 10", "Figure 11", "Figure 16"):
        assert artifact in text, artifact


def test_experiments_records_every_artifact():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for artifact in ("Table 1", "Table 2", "Table 3", "Table 4",
                     "Figure 7", "Figure 9", "Figure 10", "Figure 11",
                     "Figure 12", "Figure 13", "Figure 14", "Figure 15",
                     "Figure 16"):
        assert artifact in text, artifact


def test_examples_exist_and_are_executable_scripts():
    examples = sorted((REPO / "examples").glob("*.py"))
    assert len(examples) >= 3
    for example in examples:
        text = example.read_text()
        assert '"""' in text.split("\n", 2)[2] or text.startswith("#!"), example
        assert "def main" in text or "__main__" in text, example
