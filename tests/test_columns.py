"""Columnar (REPRO_VECTOR) paths vs their scalar references.

Every vectorized consumer added with :mod:`repro.experiments.columns`
keeps the original per-record walk as the ``REPRO_VECTOR=0`` fallback;
these tests pin the two modes byte-identical — values *and* dict
iteration order — and pin the zero-copy contract of the numpy-backed
trace-file load path.

The module imports without numpy: vector-specific tests importorskip
it, while the fallback tests monkeypatch ``columns.np`` to ``None`` and
therefore also run on the no-numpy CI leg (which installs pytest only).
"""

import random
import warnings

import pytest

from repro.experiments import columns, tracefile
from repro.frontend.simulator import FrontEndSimulator, compute_oracle
from repro.trace.bias_table import BranchBiasTable


# ------------------------------------------------------------ mode gating

def test_enabled_requires_request_and_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_VECTOR", "0")
    assert not columns.enabled()
    monkeypatch.delenv("REPRO_VECTOR", raising=False)
    assert columns.enabled() == columns.available()


def test_missing_numpy_warns_once(monkeypatch):
    monkeypatch.setenv("REPRO_VECTOR", "1")
    monkeypatch.setattr(columns, "np", None)
    with pytest.warns(RuntimeWarning, match=r"\[vector\] extra"):
        assert not columns.enabled()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert not columns.enabled()
    assert not caught  # one-shot: the second call is silent


def test_scalar_fallbacks_run_without_numpy(monkeypatch, branchy_program):
    """Every dispatching consumer works with columns.np knocked out."""
    from repro.analysis.branches import profile_branches
    from repro.trace.static_promotion import profile_biased_branches
    from repro.workloads.stats import characterize

    monkeypatch.setattr(columns, "np", None)
    stats = characterize(branchy_program, 1_000)
    assert stats.dynamic_instructions > 0
    population = profile_branches(branchy_program, 1_000)
    assert population.dynamic_branches > 0
    profile_biased_branches(branchy_program, 1_000, min_executions=4)


# --------------------------------------------------- zero-copy trace load

def test_lazy_load_is_zero_copy_and_read_only(monkeypatch):
    np = pytest.importorskip("numpy")
    if not tracefile.enabled():
        pytest.skip("trace files disabled")
    from repro.experiments import runner

    monkeypatch.setenv("REPRO_VECTOR", "1")

    program = runner.get_program("compress")
    n = 2_000
    rows = compute_oracle(program, n)
    assert tracefile.store_oracle("compress", n, rows) is not None
    loaded = tracefile.load_oracle("compress", n, program)
    assert type(loaded) is tracefile.LazyOracleTrace
    # Columns are numpy views straight over the mapped file...
    assert isinstance(loaded.addrs, np.ndarray)
    assert loaded.addrs.base is not None  # a view, not an owning copy
    # ...mapped ACCESS_READ, so the file cannot be mutated through them.
    for column in (loaded.addrs, loaded.dirs, loaded.next_pcs):
        assert not column.flags.writeable
        with pytest.raises(ValueError):
            column[0] = 0
    # len()/bool() answer without materializing rows.
    assert len(loaded) == len(rows)
    assert type(loaded) is tracefile.LazyOracleTrace
    # Columns agree with the row tuples.
    assert loaded.addrs.tolist() == [inst.addr for inst, _, _ in rows]
    assert loaded.next_pcs.tolist() == [next_pc for _, _, next_pc in rows]
    # First row access materializes once and flips to the eager class.
    assert loaded[0] == rows[0]
    assert type(loaded) is tracefile.OracleTrace
    assert list(loaded) == rows
    # No numpy scalars may leak into rows (consumers hash/serialize them).
    for (inst_a, taken_a, next_a), (inst_b, taken_b, next_b) in zip(
            loaded, rows):
        assert inst_a is inst_b
        assert taken_a == taken_b and type(taken_a) is type(taken_b)
        assert next_a == next_b and type(next_a) is type(next_b)


def test_scalar_mode_load_stays_eager(monkeypatch):
    pytest.importorskip("numpy")  # the workload generator needs it
    if not tracefile.enabled():
        pytest.skip("trace files disabled")
    from repro.experiments import runner

    monkeypatch.setenv("REPRO_VECTOR", "0")
    program = runner.get_program("li")
    n = 1_000
    rows = compute_oracle(program, n)
    assert tracefile.store_oracle("li", n, rows) is not None
    loaded = tracefile.load_oracle("li", n, program)
    assert type(loaded) is tracefile.OracleTrace
    assert list(loaded) == rows


def test_as_columns_memoizes_plain_lists(loop_program):
    rows = list(compute_oracle(loop_program, 500))
    assert type(rows) is list
    first = tracefile.as_columns(rows)
    assert tracefile.as_columns(rows) is first  # satellite: cached build
    tracefile.clear_column_memo()
    rebuilt = tracefile.as_columns(rows)
    assert rebuilt is not first
    assert bytes(rebuilt.dirs) == bytes(first.dirs)
    # An OracleTrace passes through untouched.
    assert tracefile.as_columns(first) is first


# ------------------------------------------------- bulk update parity

def _random_stream(rng, sites, length, bias):
    pcs, takens = [], []
    directions = {}
    for _ in range(length):
        pc = rng.randrange(sites) * 4
        preferred = directions.setdefault(pc, rng.random() < 0.5)
        pcs.append(pc)
        takens.append(preferred if rng.random() < bias else not preferred)
    return pcs, takens


@pytest.mark.parametrize("entries,threshold,bias", [
    (64, 4, 0.97), (64, 1, 0.6), (1024, 16, 0.9), (8192, 64, 0.99),
])
def test_retire_bulk_matches_update_fast(entries, threshold, bias):
    rng = random.Random(entries * threshold)
    pcs, takens = _random_stream(rng, sites=entries // 2 + 3,
                                 length=4_000, bias=bias)
    sequential = BranchBiasTable(entries=entries, threshold=threshold)
    flags_seq = bytes(sequential.update_fast(pc, taken)
                      for pc, taken in zip(pcs, takens))
    bulk = BranchBiasTable(entries=entries, threshold=threshold)
    flags_bulk = bulk.retire_bulk(pcs, takens)
    assert flags_bulk == flags_seq
    assert list(bulk._tags) == list(sequential._tags)
    assert list(bulk._counts) == list(sequential._counts)
    assert list(bulk._dirs) == list(sequential._dirs)
    assert list(bulk._promoted) == list(sequential._promoted)
    assert list(bulk._promoted_dirs) == list(sequential._promoted_dirs)
    assert bulk.promotions == sequential.promotions
    assert bulk.demotions == sequential.demotions


def test_saturating_counters_update_bulk_parity():
    from repro.branch.counters import SaturatingCounters

    rng = random.Random(7)
    indices = [rng.randrange(64) for _ in range(3_000)]
    takens = [rng.random() < 0.7 for _ in range(3_000)]
    sequential = SaturatingCounters(64, bits=2)
    for index, taken in zip(indices, takens):
        sequential.update(index, taken)
    bulk = SaturatingCounters(64, bits=2)
    bulk.update_bulk(indices, takens)
    assert bytes(bulk._table) == bytes(sequential._table)


def test_pas_update_bulk_parity():
    from repro.branch.pas import PAsPredictor

    rng = random.Random(11)
    pcs = [rng.randrange(300) * 4 for _ in range(3_000)]
    indices = [rng.randrange(1 << 10) for _ in range(3_000)]
    takens = [rng.random() < 0.5 for _ in range(3_000)]
    sequential = PAsPredictor(history_bits=10, bht_entries=128)
    for pc, index, taken in zip(pcs, indices, takens):
        sequential.update(pc, index, taken)
    bulk = PAsPredictor(history_bits=10, bht_entries=128)
    bulk.update_bulk(pcs, indices, takens)
    assert bytes(bulk.counters._table) == bytes(sequential.counters._table)
    assert bulk._bht == sequential._bht


@pytest.mark.parametrize("which", ["tree", "split"])
def test_multiple_update_batch_parity(which):
    from repro.branch.multiple import (MultipleBranchPredictor,
                                       SplitMultiplePredictor)

    def build():
        if which == "tree":
            return MultipleBranchPredictor(rows_bits=8)
        return SplitMultiplePredictor(table_bits=(8, 7, 6), history_bits=7)

    def state(predictor):
        if which == "tree":
            return bytes(predictor._table)
        return tuple(bytes(t.counters._table) for t in predictor.tables)

    rng = random.Random(13)
    sequential, batched = build(), build()
    for _ in range(2_000):
        count = rng.randrange(1, 4)
        path = tuple(rng.random() < 0.5 for _ in range(2))
        metas = [(path[:k], rng.random() < 0.6) for k in range(count)]
        tokens = tuple(rng.randrange(1 << 6) for _ in range(3))
        for k, (p, taken) in enumerate(metas):
            sequential.update(tokens[k], k, p, taken)
        batched.update_batch(tokens, metas)
        assert state(batched) == state(sequential)


# ------------------------------------------- whole-pipeline mode parity

def _ordered(value):
    """Structure that is sensitive to dict iteration order."""
    if isinstance(value, dict):
        return [(key, _ordered(item)) for key, item in value.items()]
    if isinstance(value, (list, tuple)):
        return [_ordered(item) for item in value]
    return value


def _both_modes(monkeypatch, fn):
    monkeypatch.setenv("REPRO_VECTOR", "1")
    vector = fn()
    monkeypatch.setenv("REPRO_VECTOR", "0")
    scalar = fn()
    monkeypatch.delenv("REPRO_VECTOR", raising=False)
    return vector, scalar


@pytest.mark.parametrize("seed", range(0, 200, 25))
def test_stats_and_profiles_mode_parity(monkeypatch, seed):
    """Property check over a slice of the fuzzer's fixed seed range.

    (The full 200-seed sweep is the differential fuzzer's ``--mode
    vector`` CI job; this keeps a representative slice in tier-1.)
    """
    pytest.importorskip("numpy")
    import dataclasses

    import numpy as np

    from repro.analysis.branches import profile_branches
    from repro.trace.static_promotion import profile_biased_branches
    from repro.workloads.generator import generate_program
    from repro.workloads.stats import characterize

    import pathlib
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                           / "benchmarks"))
    try:
        from fuzz_frontend import random_profile
    finally:
        sys.path.pop(0)

    program = generate_program(
        random_profile(np.random.default_rng(seed)), seed=seed)

    def stats_case():
        stats = characterize(program, 1_500)
        data = dataclasses.asdict(stats)
        data["block_size_histogram"] = dict(stats.block_size_histogram)
        return data

    def profile_case():
        return {addr: dataclasses.asdict(site) for addr, site in
                profile_branches(program, 1_500).sites.items()}

    def promotion_case():
        return {addr: dataclasses.asdict(p) for addr, p in
                profile_biased_branches(program, 1_500,
                                        min_executions=8).items()}

    for case in (stats_case, profile_case, promotion_case):
        vector, scalar = _both_modes(monkeypatch, case)
        assert _ordered(vector) == _ordered(scalar)


def test_simulator_batched_training_parity(monkeypatch, branchy_program):
    """Batched per-fetch predictor training retires identical state."""
    pytest.importorskip("numpy")
    import dataclasses

    from repro.config import PROMOTION_PACKING

    oracle = compute_oracle(branchy_program, 4_000)

    def run():
        result = FrontEndSimulator(branchy_program, PROMOTION_PACKING,
                                   oracle=oracle).run()
        return dataclasses.asdict(result.stats)

    vector, scalar = _both_modes(monkeypatch, run)
    assert vector == scalar


def test_oracle_census_matches_row_walk(switch_program):
    pytest.importorskip("numpy")
    rows = compute_oracle(switch_program, 2_000)
    trace = tracefile.as_columns(rows)
    census = columns.oracle_census(trace.addrs, trace.dirs, switch_program)
    cond = sum(1 for _, taken, _ in rows if taken is not None)
    assert census["dynamic_instructions"] == len(rows)
    assert census["cond_branches"] == cond
    assert census["taken_branches"] == sum(
        1 for _, taken, _ in rows if taken)
    assert census["static_touched"] == len(
        {inst.addr for inst, _, _ in rows})
    assert sum(census["class_counts"]) == len(rows)


def test_no_bare_numpy_imports():
    """Wheel audit: every ``import numpy`` in the tree must be guarded.

    The package promises to install and import cleanly without numpy
    (the scalar fallbacks take over), so any numpy import outside a
    ``try``/``except ImportError`` guard is a packaging regression.
    This is the automated form of the grep audit: walk every module
    under ``src/repro`` and ``benchmarks`` and require each numpy
    import statement to sit inside a try/except handling ImportError
    (or ModuleNotFoundError, its subclass).
    """
    import ast
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[1]
    offenders = []
    for base in ("src/repro", "benchmarks"):
        for path in sorted((root / base).rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            guarded_spans = []
            for node in ast.walk(tree):
                if isinstance(node, ast.Try):
                    names = []
                    for handler in node.handlers:
                        t = handler.type
                        if t is None:
                            names.append("ImportError")
                        elif isinstance(t, ast.Name):
                            names.append(t.id)
                        elif isinstance(t, ast.Tuple):
                            names.extend(e.id for e in t.elts
                                         if isinstance(e, ast.Name))
                    if {"ImportError", "ModuleNotFoundError",
                            "Exception"} & set(names):
                        guarded_spans.append(
                            (node.lineno, node.handlers[0].lineno))
            for node in ast.walk(tree):
                targets = []
                if isinstance(node, ast.Import):
                    targets = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and node.module:
                    targets = [node.module]
                if not any(t == "numpy" or t.startswith("numpy.")
                           for t in targets):
                    continue
                if not any(lo <= node.lineno < hi
                           for lo, hi in guarded_spans):
                    offenders.append(f"{path.relative_to(root)}:"
                                     f"{node.lineno}")
    assert not offenders, \
        f"unguarded numpy imports (wheel must work without numpy): {offenders}"
