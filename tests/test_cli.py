"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import CONFIGS, EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "compress" in out and "tex" in out
    assert "promotion_packing" in out


def test_run_frontend(capsys):
    assert main(["run", "compress", "--config", "baseline",
                 "--instructions", "5000"]) == 0
    out = capsys.readouterr().out
    assert "effective fetch rate" in out
    assert "5000" in out


def test_run_with_promotion_flags(capsys):
    assert main(["run", "compress", "--instructions", "5000",
                 "--threshold", "16"]) == 0
    out = capsys.readouterr().out
    assert "promo16" in out


def test_run_machine(capsys):
    assert main(["run", "compress", "--machine", "--instructions", "3000"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "Cycle accounting" in out


def test_run_machine_perfect_memory(capsys):
    assert main(["run", "compress", "--machine", "--perfect-memory",
                 "--instructions", "3000"]) == 0
    assert "perfmem" in capsys.readouterr().out


def test_run_extension_flags(capsys):
    assert main(["run", "compress", "--instructions", "5000",
                 "--static-promotion", "--path-assoc",
                 "--no-inactive-issue", "--packing-policy",
                 "cost_regulated"]) == 0
    assert "effective fetch rate" in capsys.readouterr().out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["run", "spice"])


def test_parser_covers_all_experiments():
    parser = build_parser()
    for name in EXPERIMENTS:
        args = parser.parse_args(["experiment", name])
        assert args.name == name


def test_experiment_command_runs(capsys, monkeypatch):
    # Shrink run lengths so the experiment is quick.
    import repro.experiments.runner as runner
    monkeypatch.setattr(runner, "default_length", lambda b: 5000)
    monkeypatch.setattr(runner, "machine_length", lambda b: 2000)
    runner.clear_caches()
    try:
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "0 or 1" in out
    finally:
        runner.clear_caches()


def test_config_names_resolve():
    for name, config in CONFIGS.items():
        assert config.kind in ("tc", "icache"), name
