"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import CONFIGS, EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "compress" in out and "tex" in out
    assert "promotion_packing" in out


def test_run_frontend(capsys):
    assert main(["run", "compress", "--config", "baseline",
                 "--instructions", "5000"]) == 0
    out = capsys.readouterr().out
    assert "effective fetch rate" in out
    assert "5000" in out


def test_run_with_promotion_flags(capsys):
    assert main(["run", "compress", "--instructions", "5000",
                 "--threshold", "16"]) == 0
    out = capsys.readouterr().out
    assert "promo16" in out


def test_run_machine(capsys):
    assert main(["run", "compress", "--machine", "--instructions", "3000"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "Cycle accounting" in out


def test_run_machine_perfect_memory(capsys):
    assert main(["run", "compress", "--machine", "--perfect-memory",
                 "--instructions", "3000"]) == 0
    assert "perfmem" in capsys.readouterr().out


def test_run_extension_flags(capsys):
    assert main(["run", "compress", "--instructions", "5000",
                 "--static-promotion", "--path-assoc",
                 "--no-inactive-issue", "--packing-policy",
                 "cost_regulated"]) == 0
    assert "effective fetch rate" in capsys.readouterr().out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["run", "spice"])


def test_parser_covers_all_experiments():
    parser = build_parser()
    for name in EXPERIMENTS:
        args = parser.parse_args(["experiment", name])
        assert args.name == name


def test_experiment_command_runs(capsys, monkeypatch):
    # Shrink run lengths so the experiment is quick.
    import repro.experiments.runner as runner
    monkeypatch.setattr(runner, "default_length", lambda b: 5000)
    monkeypatch.setattr(runner, "machine_length", lambda b: 2000)
    runner.clear_caches()
    try:
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "0 or 1" in out
    finally:
        runner.clear_caches()


def test_config_names_resolve():
    for name, config in CONFIGS.items():
        assert config.kind in ("tc", "icache"), name


def test_experiment_supervision_flags_set_env(monkeypatch):
    import os

    import repro.__main__ as cli

    # setenv registers restoration, so the values main() writes directly
    # into os.environ are rolled back after the test.
    for knob in ("REPRO_JOBS", "REPRO_RETRIES", "REPRO_KEEP_GOING",
                 "REPRO_RESUME"):
        monkeypatch.setenv(knob, "")
    monkeypatch.setattr(cli, "_render_experiment", lambda name: 0)
    assert main(["experiment", "table3", "--jobs", "3", "--max-retries", "7",
                 "--keep-going", "--no-resume"]) == 0
    assert os.environ["REPRO_JOBS"] == "3"
    assert os.environ["REPRO_RETRIES"] == "7"
    assert os.environ["REPRO_KEEP_GOING"] == "1"
    assert os.environ["REPRO_RESUME"] == "0"
    assert main(["experiment", "table3", "--fail-fast", "--resume"]) == 0
    assert os.environ["REPRO_KEEP_GOING"] == "0"
    assert os.environ["REPRO_RESUME"] == "1"


def test_experiment_exclusive_flag_pairs_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "table3", "--fail-fast", "--keep-going"])
    with pytest.raises(SystemExit):
        main(["experiment", "table3", "--resume", "--no-resume"])


def test_experiment_failure_report(monkeypatch, capsys):
    import repro.__main__ as cli
    from repro.config import BASELINE
    from repro.experiments.faults import GridFailures, PointFailure
    from repro.experiments.scheduler import GridPoint

    failure = PointFailure(
        point=GridPoint("frontend", "compress", BASELINE, 5_000),
        kind="deterministic", attempts=1, error="ValueError: injected")

    def exploding(name):
        raise GridFailures([failure], {})

    monkeypatch.setattr(cli, "_render_experiment", exploding)
    assert main(["experiment", "table3", "--keep-going"]) == 1
    out = capsys.readouterr().out
    assert "Failed grid points" in out
    assert "compress" in out and "ValueError: injected" in out
    assert "resumes from the journal" in out
