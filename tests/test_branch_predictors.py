"""Branch prediction structures: counters, gshare, PAs, hybrid, multiple."""

import pytest

from repro.branch import (
    GlobalHistory,
    GsharePredictor,
    HybridPredictor,
    IdealReturnAddressStack,
    LastTargetPredictor,
    MultipleBranchPredictor,
    PAsPredictor,
    ReturnAddressStack,
    SaturatingCounters,
    SplitMultiplePredictor,
)


# --- saturating counters ------------------------------------------------

def test_counter_initial_state_weakly_not_taken():
    counters = SaturatingCounters(16)
    assert not counters.predict(0)
    assert counters.value(0) == 1


def test_counter_hysteresis():
    counters = SaturatingCounters(4)
    counters.update(0, True)   # 1 -> 2: now predicts taken
    assert counters.predict(0)
    counters.update(0, False)  # 2 -> 1
    assert not counters.predict(0)


def test_counter_saturation():
    counters = SaturatingCounters(4)
    for _ in range(10):
        counters.update(0, True)
    assert counters.value(0) == 3
    for _ in range(10):
        counters.update(0, False)
    assert counters.value(0) == 0


def test_counter_index_wraps():
    counters = SaturatingCounters(8)
    counters.update(3, True)
    assert counters.value(11) == counters.value(3)


def test_counter_storage_bits():
    assert SaturatingCounters(1024, bits=2).storage_bits() == 2048


def test_counter_invalid_args():
    with pytest.raises(ValueError):
        SaturatingCounters(0)
    with pytest.raises(ValueError):
        SaturatingCounters(8, bits=0)
    with pytest.raises(ValueError):
        SaturatingCounters(8, bits=2, init=4)


def test_three_bit_counter_threshold():
    counters = SaturatingCounters(4, bits=3)
    assert counters.threshold == 4
    for _ in range(4):
        counters.update(0, True)
    assert counters.predict(0)


# --- global history -------------------------------------------------------

def test_history_shift_and_mask():
    ghr = GlobalHistory(4)
    for outcome in (True, False, True, True):
        ghr.push(outcome)
    assert ghr.value == 0b1011
    ghr.push(True)
    assert ghr.value == 0b0111  # oldest bit shifted out


def test_history_snapshot_restore():
    ghr = GlobalHistory(8)
    ghr.push(True)
    snap = ghr.snapshot()
    ghr.push(False)
    ghr.push(False)
    ghr.restore(snap)
    assert ghr.value == snap == 1


# --- gshare ---------------------------------------------------------------

def test_gshare_learns_a_bias():
    predictor = GsharePredictor(history_bits=8)
    history = 0
    index = predictor.index(100, history)
    for _ in range(4):
        predictor.update(index, True)
    assert predictor.predict(100, history)


def test_gshare_index_xors_history():
    predictor = GsharePredictor(history_bits=8)
    assert predictor.index(0b1100, 0b1010) == 0b0110


def test_gshare_history_wider_than_table_rejected():
    with pytest.raises(ValueError):
        GsharePredictor(history_bits=16, table_bits=8)


def test_gshare_learns_alternating_pattern_with_history():
    """With history, gshare disambiguates a strict alternation."""
    predictor = GsharePredictor(history_bits=8)
    ghr = GlobalHistory(8)
    pc = 0x40
    correct = 0
    total = 400
    outcome = True
    for i in range(total):
        index = predictor.index(pc, ghr.value)
        prediction = predictor.counters.predict(index)
        if prediction == outcome:
            correct += 1
        predictor.update(index, outcome)
        ghr.push(outcome)
        outcome = not outcome
    assert correct / total > 0.9


# --- PAs --------------------------------------------------------------------

def test_pas_learns_per_branch_pattern():
    predictor = PAsPredictor(history_bits=10, bht_entries=64)
    pc = 0x77
    pattern = [True, True, False]
    correct = 0
    total = 600
    for i in range(total):
        outcome = pattern[i % 3]
        index = predictor.index(pc)
        if predictor.counters.predict(index) == outcome:
            correct += 1
        predictor.update(pc, index, outcome)
    assert correct / total > 0.9


def test_pas_separate_histories():
    predictor = PAsPredictor(history_bits=10, bht_entries=64)
    for _ in range(8):
        index = predictor.index(1)
        predictor.update(1, index, True)
    assert predictor.index(1) != 0
    assert predictor.index(2) == 0  # untouched branch, empty history


# --- hybrid ---------------------------------------------------------------

def test_hybrid_prediction_structure():
    predictor = HybridPredictor(history_bits=10)
    prediction = predictor.predict(0x10, 0)
    assert prediction.taken in (True, False)
    predictor.update(0x10, prediction, True)


def test_hybrid_selector_moves_toward_better_component():
    predictor = HybridPredictor(history_bits=10)
    pc = 0x20
    # Train a case where PAs is right and gshare is wrong: per-branch
    # always-taken with noisy global history.
    import random
    rng = random.Random(7)
    for _ in range(300):
        history = rng.getrandbits(10)
        prediction = predictor.predict(pc, history)
        predictor.update(pc, prediction, True)
    prediction = predictor.predict(pc, rng.getrandbits(10))
    assert prediction.pas_taken  # PAs has surely learned always-taken


def test_hybrid_storage_accounting():
    predictor = HybridPredictor(history_bits=15)
    # gshare 2^15 x 2b + PAs (2^15 x 2b + 4096 x 15b) + selector 2^15 x 2b
    expected = 3 * (1 << 15) * 2 + 4096 * 15
    assert predictor.storage_bits() == expected


# --- multiple branch predictor ------------------------------------------------

def test_multiple_gives_three_predictions():
    predictor = MultipleBranchPredictor(rows_bits=8)
    prediction = predictor.predict(0x30, 0)
    assert len(prediction.taken) == 3
    assert len(prediction.indices) == 3


def test_multiple_tree_counters_are_conditioned():
    """B1's counter depends on B0's actual direction."""
    predictor = MultipleBranchPredictor(rows_bits=6)
    row = predictor.row_index(0x11, 0)
    # Train: after B0 taken, B1 is taken; after B0 not-taken, B1 not-taken.
    for _ in range(8):
        predictor.update(row, 0, (), True)
        predictor.update(row, 1, (True,), True)
        predictor.update(row, 1, (False,), False)
    assert predictor._table[row * 7 + 1 + 1] >= 2   # path (True,)
    assert predictor._table[row * 7 + 1 + 0] <= 1   # path (False,)


def test_multiple_storage_is_32kb():
    predictor = MultipleBranchPredictor(rows_bits=14)
    assert predictor.storage_bits() == (1 << 14) * 7 * 2  # 28KB of counters


def test_multiple_update_positions():
    predictor = MultipleBranchPredictor(rows_bits=6)
    row = 5
    predictor.update(row, 2, (True, False), True)
    assert predictor._table[row * 7 + 3 + 0b10] == 2
    with pytest.raises(ValueError):
        predictor.update(row, 3, (True, True, True), True)


def test_split_predictor_uses_separate_tables():
    predictor = SplitMultiplePredictor(table_bits=(8, 7, 6), history_bits=6)
    prediction = predictor.predict(0x44, 0b101)
    assert len(prediction.taken) == 3
    predictor.update(prediction.indices[1], 1, (True,), True)
    assert predictor.tables[1].counters.value(prediction.indices[1]) == 2


def test_split_predictor_paper_sizing():
    predictor = SplitMultiplePredictor()  # 64K/16K/8K counters
    assert predictor.storage_bits() == ((1 << 16) + (1 << 14) + (1 << 13)) * 2


# --- RAS -----------------------------------------------------------------------

def test_ideal_ras_lifo():
    ras = IdealReturnAddressStack()
    ras.push(10)
    ras.push(20)
    assert ras.pop() == 20
    assert ras.pop() == 10
    assert ras.pop() is None


def test_ideal_ras_snapshot_restore():
    ras = IdealReturnAddressStack()
    ras.push(10)
    snap = ras.snapshot()
    ras.push(20)
    ras.pop(); ras.pop()
    ras.restore(snap)
    assert ras.pop() == 10


def test_finite_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(depth=2)
    ras.push(1); ras.push(2); ras.push(3)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None  # 1 was dropped


def test_finite_ras_rejects_bad_depth():
    with pytest.raises(ValueError):
        ReturnAddressStack(depth=0)


# --- indirect -------------------------------------------------------------------

def test_last_target_predictor():
    predictor = LastTargetPredictor(entries=16)
    assert predictor.predict(100) is None
    predictor.update(100, 555)
    assert predictor.predict(100) == 555
    predictor.update(100, 666)
    assert predictor.predict(100) == 666


def test_last_target_tag_conflict():
    predictor = LastTargetPredictor(entries=16)
    predictor.update(4, 111)
    predictor.update(20, 222)  # same slot, different tag
    assert predictor.predict(4) is None
    assert predictor.predict(20) == 222
