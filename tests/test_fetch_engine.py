"""Fetch engines: trace-cache path, icache path, partial matching."""

import pytest

from repro.branch.multiple import MultipleBranchPredictor
from repro.config import BASELINE, ICACHE
from repro.frontend.build import build_engine
from repro.frontend.fetch import FETCH_WIDTH, ICacheFetchEngine, TraceFetchEngine
from repro.frontend.stats import FetchReason
from repro.isa import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.segment import FinalizeReason, SegmentBranch, TraceSegment


STRAIGHT = "main:" + "\n NOP" * 30 + "\n HALT"


def warm_icache(engine, addrs):
    for addr in addrs:
        engine.memory.inst_line_latency(addr)


def test_icache_block_ends_at_control(branchy_program):
    engine = build_engine(branchy_program, ICACHE)
    loop = branchy_program.symbols["loop"]
    warm_icache(engine, range(len(branchy_program)))
    result = engine.fetch(loop)
    assert result.source == "icache"
    assert result.active[-1].op is Opcode.BEQ
    assert result.raw_reason is FetchReason.ICACHE
    assert result.predictions_used == 1


def test_icache_block_caps_at_fetch_width():
    program = assemble(STRAIGHT)
    engine = build_engine(program, ICACHE)
    warm_icache(engine, range(len(program)))
    result = engine.fetch(0)
    assert len(result.active) == FETCH_WIDTH
    assert result.raw_reason is FetchReason.MAX_SIZE
    assert result.next_pc == FETCH_WIDTH


def test_icache_miss_reports_stall():
    program = assemble(STRAIGHT)
    engine = build_engine(program, ICACHE)
    result = engine.fetch(0)
    assert result.stall_cycles > 0
    result = engine.fetch(0)
    assert result.stall_cycles == 0


def test_icache_call_pushes_ras(loop_program):
    engine = build_engine(loop_program, ICACHE)
    warm_icache(engine, range(len(loop_program)))
    call_addr = next(i.addr for i in loop_program.instructions if i.op is Opcode.CALL)
    result = engine.fetch(call_addr)
    assert result.next_pc == loop_program.symbols["fn"]
    assert len(engine.ras) == 1
    # Fetching the RET pops the pushed return address.
    ret_addr = next(i.addr for i in loop_program.instructions if i.op is Opcode.RET)
    result = engine.fetch(ret_addr)
    assert result.next_pc == call_addr + 1


def test_trace_engine_falls_back_to_icache(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    result = engine.fetch(branchy_program.entry)
    assert result.source == "icache"  # trace cache is cold


def _install_segment(engine, program, addrs, dirs=None, promoted=None,
                     reason=FinalizeReason.MAX_SIZE):
    """Hand-build a segment from program instructions and insert it."""
    insts = [program.instructions[a] for a in addrs]
    branches = []
    dirs = dirs or {}
    promoted = promoted or set()
    for pos, inst in enumerate(insts):
        if inst.op.is_cond_branch:
            branches.append(SegmentBranch(pos, dirs.get(inst.addr, False),
                                          inst.addr in promoted))
    segment = TraceSegment(start_addr=insts[0].addr, instructions=insts,
                           branches=branches, finalize_reason=reason)
    nxt = segment.compute_next_addr()
    segment.next_addr = -1 if nxt is None else nxt
    segment.validate()
    engine.trace_cache.insert(segment)
    return segment


def test_trace_hit_supplies_segment(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    loop = branchy_program.symbols["loop"]
    skip = branchy_program.symbols["skip"]
    beq_addr = skip - 3  # the BEQ before the two ADDs
    segment = _install_segment(
        engine, branchy_program,
        [loop, loop + 1, loop + 2, loop + 3, loop + 4],  # up to the BEQ... compute below
    )
    result = engine.fetch(loop)
    assert result.source == "tc"
    assert result.segment is segment


def test_partial_match_divergence(branchy_program):
    """Prediction disagreeing with the embedded path truncates the fetch."""
    engine = build_engine(branchy_program, BASELINE)
    loop = branchy_program.symbols["loop"]
    skip = branchy_program.symbols["skip"]
    beq_addr = next(i.addr for i in branchy_program.instructions
                    if i.op is Opcode.BEQ)
    # Segment embeds BEQ not-taken and continues into the ADDs.
    addrs = list(range(loop, beq_addr + 1)) + [beq_addr + 1, beq_addr + 2]
    _install_segment(engine, branchy_program, addrs, dirs={beq_addr: False})
    # Force the predictor to say "taken" for the first prediction.
    row = engine.predictor.row_index(loop, engine.ghr.value)
    for _ in range(4):
        engine.predictor.update(row, 0, (), True)
    result = engine.fetch(loop)
    assert result.divergence
    assert result.raw_reason is FetchReason.PARTIAL_MATCH
    assert result.active[-1].addr == beq_addr
    assert [i.addr for i in result.inactive] == [beq_addr + 1, beq_addr + 2]
    assert result.next_pc == skip  # the predicted (taken) target


def test_full_match_follows_segment_successor(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    loop = branchy_program.symbols["loop"]
    beq_addr = next(i.addr for i in branchy_program.instructions
                    if i.op is Opcode.BEQ)
    addrs = list(range(loop, beq_addr + 1)) + [beq_addr + 1, beq_addr + 2]
    segment = _install_segment(engine, branchy_program, addrs, dirs={beq_addr: False})
    # Predictor default: weakly not-taken => agrees with embedded path.
    result = engine.fetch(loop)
    assert not result.divergence
    assert result.next_pc == segment.next_addr
    assert result.predictions_used == 1


def test_promoted_branch_consumes_no_prediction(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    loop = branchy_program.symbols["loop"]
    beq_addr = next(i.addr for i in branchy_program.instructions
                    if i.op is Opcode.BEQ)
    addrs = list(range(loop, beq_addr + 1)) + [beq_addr + 1, beq_addr + 2]
    _install_segment(engine, branchy_program, addrs, dirs={beq_addr: False},
                     promoted={beq_addr})
    result = engine.fetch(loop)
    assert result.predictions_used == 0
    assert not result.pred_records
    assert result.active_promoted[[i.addr for i in result.active].index(beq_addr)]


def test_fault_override_forces_direction(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    loop = branchy_program.symbols["loop"]
    skip = branchy_program.symbols["skip"]
    beq_addr = next(i.addr for i in branchy_program.instructions
                    if i.op is Opcode.BEQ)
    addrs = list(range(loop, beq_addr + 1)) + [beq_addr + 1, beq_addr + 2]
    _install_segment(engine, branchy_program, addrs, dirs={beq_addr: False},
                     promoted={beq_addr})
    engine.add_fault_override(beq_addr, True)
    result = engine.fetch(loop)
    # The override redirects along the taken path, diverging from the trace.
    assert result.divergence
    assert result.next_pc == skip
    # The override is one-shot.
    result = engine.fetch(loop)
    assert not result.divergence


def test_ghr_advances_with_predictions(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    warm_icache(engine, range(len(branchy_program)))
    before = engine.ghr.value
    loop = branchy_program.symbols["loop"]
    engine.fetch(loop)  # icache block ending in BEQ: one push
    assert engine.ghr.value in ((before << 1) & engine.ghr.mask,
                                ((before << 1) | 1) & engine.ghr.mask)


def test_snapshot_restore_roundtrip(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    engine.ghr.push(True)
    engine.ras.push(42)
    snap = engine.snapshot()
    engine.ghr.push(False)
    engine.ras.pop()
    engine.restore(snap)
    assert engine.ghr.value == 1
    assert engine.ras.pop() == 42


def test_control_snapshots_recorded(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    engine.capture_snapshots = True  # off by default; the core re-enables it
    warm_icache(engine, range(len(branchy_program)))
    loop = branchy_program.symbols["loop"]
    result = engine.fetch(loop)
    assert result.pred_records
    assert len(result.control_snapshots) == 1


def test_off_image_fetch_returns_empty(branchy_program):
    engine = build_engine(branchy_program, BASELINE)
    result = engine.fetch(10_000)
    assert result.active == []
    assert result.next_pc == 10_000
