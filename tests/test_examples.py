"""The examples must run end-to-end (small arguments keep this fast)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py", "compress", "20000")
    assert "Effective fetch rate" in out
    assert "trace cache (baseline)" in out


def test_promotion_threshold_study_runs():
    out = run_example("promotion_threshold_study.py", "compress", "20000")
    assert "threshold = 64" in out


def test_packing_policies_runs():
    out = run_example("packing_policies.py", "compress", "20000")
    assert "cost_regulated" in out


def test_end_to_end_ipc_runs():
    out = run_example("end_to_end_ipc.py", "compress", "6000")
    assert "IPC" in out
    assert "perfect disambiguation" in out


def test_custom_program_runs():
    out = run_example("custom_program.py")
    assert "Full machine" in out
    assert "promotion@64" in out


def test_trace_cache_anatomy_runs():
    out = run_example("trace_cache_anatomy.py", "compress")
    assert "Branch population" in out
    assert "duplication" in out
