"""The out-of-order machine: architectural correctness and timing behaviour."""

import pytest

from repro import config as cfg
from repro.config import CoreConfig, MachineConfig
from repro.core.machine import Machine, simulate
from repro.frontend.stats import CycleCategory
from repro.isa import FunctionalExecutor, assemble
from repro.workloads import generate_program


def machine_config(frontend=cfg.BASELINE, perfect=False, **core_kwargs):
    return MachineConfig(frontend=frontend,
                         core=CoreConfig(perfect_disambiguation=perfect, **core_kwargs))


@pytest.fixture(scope="module")
def compress():
    return generate_program("compress")


# --- architectural correctness ---------------------------------------------

@pytest.mark.parametrize("frontend", [cfg.ICACHE, cfg.BASELINE, cfg.PROMOTION,
                                      cfg.PROMOTION_COST_REG, cfg.PROMOTION_PACKING])
def test_machine_matches_functional_execution(compress, frontend):
    """Whatever the front end speculates, retired state must equal an
    in-order functional run — the strongest whole-machine invariant."""
    n = 8_000
    reference = FunctionalExecutor(compress, max_instructions=n)
    reference.run_to_completion()
    machine = Machine(compress, machine_config(frontend), max_instructions=n)
    result = machine.run()
    assert result.retired == n
    assert machine.arch_regs == reference.state.regs


def test_perfect_disambiguation_is_also_correct(compress):
    n = 8_000
    reference = FunctionalExecutor(compress, max_instructions=n)
    reference.run_to_completion()
    machine = Machine(compress, machine_config(perfect=True), max_instructions=n)
    machine.run()
    assert machine.arch_regs == reference.state.regs


def test_committed_memory_matches(loop_program):
    reference = FunctionalExecutor(loop_program)
    reference.run_to_completion()
    machine = Machine(loop_program, machine_config(), max_instructions=None)
    machine.run()
    arr = loop_program.data_symbols["arr"]
    assert machine.memory_image[arr + 2] == reference.state.memory[arr + 2]


def test_halt_stops_the_machine(loop_program):
    result = simulate(loop_program, machine_config(), max_instructions=None)
    reference = FunctionalExecutor(loop_program)
    assert result.retired == reference.run_to_completion()


# --- timing behaviour -------------------------------------------------------

def test_ipc_is_superscalar(compress):
    result = simulate(compress, machine_config(), max_instructions=20_000)
    assert result.ipc > 1.0  # 16-wide machine must beat scalar


def test_ipc_bounded_by_width(compress):
    result = simulate(compress, machine_config(), max_instructions=20_000)
    assert result.ipc <= 16.0


def test_cycle_accounting_sums_to_cycles(compress):
    result = simulate(compress, machine_config(), max_instructions=15_000)
    accounted = sum(result.cycle_accounting.values())
    # The final partial cycle may be unaccounted; allow tiny slack.
    assert abs(accounted - result.cycles) <= 2


def test_perfect_memory_never_slower(compress):
    conservative = simulate(compress, machine_config(), max_instructions=15_000)
    perfect = simulate(compress, machine_config(perfect=True), max_instructions=15_000)
    assert perfect.cycles <= conservative.cycles * 1.02


def test_conservative_core_stalls_on_full_window(compress):
    result = simulate(compress, machine_config(), max_instructions=15_000)
    perfect = simulate(compress, machine_config(perfect=True), max_instructions=15_000)
    assert result.cycle_accounting[CycleCategory.FULL_WINDOW] >= \
        perfect.cycle_accounting[CycleCategory.FULL_WINDOW]


def test_resolution_time_positive(compress):
    result = simulate(compress, machine_config(), max_instructions=15_000)
    assert result.resolution_count > 0
    assert result.avg_resolution_time >= 2.0


def test_branch_stats_collected(compress):
    result = simulate(compress, machine_config(), max_instructions=15_000)
    assert result.cond_branches > 500
    assert result.cond_mispredicts > 0
    assert result.fetches > 0


def test_promotion_config_promotes_and_faults():
    program = generate_program("plot")
    result = simulate(program, machine_config(cfg.PROMOTION_COST_REG),
                      max_instructions=40_000)
    assert result.promotions > 0
    assert result.promoted_branches > 0


def test_traps_serialize(loop_program):
    result = simulate(loop_program, machine_config(), max_instructions=None)
    assert result.cycle_accounting[CycleCategory.TRAPS] > 0


def test_store_load_forwarding():
    """A load immediately after a same-address store must forward."""
    source = """
        .data
buf:    .space 8
        .text
main:   ADDI r10, r0, 200
loop:   ADDI r2, r2, 3
        ST r2, 0(r1)
        LD r3, 0(r1)
        ADD r4, r4, r3
        ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""
    program = assemble(source)
    result = simulate(program, machine_config(perfect=True), max_instructions=None)
    assert result.load_forwards > 50
    # And the forwarded values are architecturally right.
    reference = FunctionalExecutor(program)
    reference.run_to_completion()
    machine = Machine(program, machine_config(perfect=True), max_instructions=None)
    machine.run()
    assert machine.arch_regs[4] == reference.state.regs[4]


def test_conservative_blocks_loads_behind_unknown_stores():
    """A store with a late-resolving address delays younger loads in the
    conservative core but not with perfect disambiguation."""
    source = """
        .data
buf:    .space 64
ptr:    .words 7
        .text
main:   ADDI r10, r0, 300
loop:   LD r2, ptr(r0)
        MUL r2, r2, r2
        ANDI r2, r2, 31
        ST r5, buf(r2)
        LD r6, 40(r0)
        ADD r7, r7, r6
        ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""
    program = assemble(source)
    conservative = simulate(program, machine_config(), max_instructions=None)
    perfect = simulate(program, machine_config(perfect=True), max_instructions=None)
    assert perfect.cycles < conservative.cycles


def test_wrong_path_instructions_do_not_retire(branchy_program):
    result = simulate(branchy_program, machine_config(), max_instructions=None)
    reference = FunctionalExecutor(branchy_program)
    assert result.retired == reference.run_to_completion()


def test_indirect_jump_machine(switch_program):
    result = simulate(switch_program, machine_config(), max_instructions=None)
    reference = FunctionalExecutor(switch_program)
    assert result.retired == reference.run_to_completion()
    assert result.indirect_jumps > 0


def test_machine_determinism(compress):
    a = simulate(compress, machine_config(), max_instructions=10_000)
    b = simulate(compress, machine_config(), max_instructions=10_000)
    assert (a.cycles, a.cond_mispredicts) == (b.cycles, b.cond_mispredicts)


def test_checkpoint_count_bounded(compress):
    machine = Machine(compress, machine_config(), max_instructions=10_000)
    limit = machine.config.core.max_checkpoints
    original_dispatch = machine._dispatch

    def checked_dispatch(width):
        original_dispatch(width)
        assert len(machine.checkpoints) <= limit

    machine._dispatch = checked_dispatch
    machine.run()


def test_narrow_machine_is_slower(compress):
    wide = simulate(compress, machine_config(), max_instructions=10_000)
    narrow = simulate(
        compress,
        MachineConfig(frontend=cfg.BASELINE,
                      core=CoreConfig(n_fus=2, rs_per_fu=16, issue_width=2,
                                      retire_width=2)),
        max_instructions=10_000,
    )
    assert narrow.cycles > wide.cycles
    assert narrow.ipc <= 2.0
