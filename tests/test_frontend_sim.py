"""Oracle-driven front-end simulator: matching, recovery, accounting."""

import pytest

from repro import config as cfg
from repro.frontend.simulator import FrontEndSimulator, compute_oracle
from repro.frontend.stats import CycleCategory, FetchReason
from repro.isa import assemble
from repro.workloads import generate_program


def run(program, config, n=20_000, oracle=None):
    return FrontEndSimulator(program, config, oracle=oracle, max_instructions=n).run()


def test_oracle_matches_functional_execution(loop_program):
    oracle = compute_oracle(loop_program, None)
    # 20 iterations of an 8-inst loop + prologue + trap/halt + calls
    assert oracle[-1][0].op.mnemonic == "HALT"
    addrs = [entry[0].addr for entry in oracle[:3]]
    assert addrs[0] == loop_program.entry


def test_all_retired_instructions_accounted(loop_program):
    result = run(loop_program, cfg.BASELINE)
    oracle_len = len(compute_oracle(loop_program, 20_000))
    assert result.instructions_retired == oracle_len
    assert result.stats.fetches > 0


def test_efr_bounded_by_fetch_width(branchy_program):
    result = run(branchy_program, cfg.BASELINE)
    assert 1.0 <= result.effective_fetch_rate <= 16.0


def test_icache_efr_bounded_by_block_size(branchy_program):
    result = run(branchy_program, cfg.ICACHE)
    # One block per cycle: EFR can never exceed the longest block.
    assert result.effective_fetch_rate <= 16.0
    assert result.stats.tc_fetches == 0


def test_trace_cache_warms_up():
    program = generate_program("compress")
    result = run(program, cfg.BASELINE, n=40_000)
    assert result.tc_hits > result.tc_misses  # mostly hits once warm


def test_baseline_beats_icache_on_efr():
    program = generate_program("compress")
    oracle = compute_oracle(program, 40_000)
    icache = run(program, cfg.ICACHE, oracle=oracle)
    baseline = run(program, cfg.BASELINE, oracle=oracle)
    assert baseline.effective_fetch_rate > 1.2 * icache.effective_fetch_rate


def test_promotion_reduces_predictions_needed():
    program = generate_program("m88ksim")
    oracle = compute_oracle(program, 60_000)
    base = run(program, cfg.BASELINE, oracle=oracle)
    promo = run(program, cfg.PROMOTION, oracle=oracle)
    assert promo.promotions > 0
    base_buckets = base.stats.predictions_buckets()
    promo_buckets = promo.stats.predictions_buckets()
    assert promo_buckets["0 or 1"] > base_buckets["0 or 1"]


def test_promotion_produces_faults_on_flaky_benchmark():
    program = generate_program("plot")
    result = run(program, cfg.PROMOTION, n=60_000)
    assert result.stats.promoted_faults > 0
    assert result.demotions > 0


def test_packing_inflates_tc_misses():
    """Packing's redundancy costs show up as extra trace-cache misses
    (segments start at arbitrary alignments), not as extra writes."""
    program = generate_program("compress")
    oracle = compute_oracle(program, 40_000)
    base = run(program, cfg.BASELINE, oracle=oracle)
    pack = run(program, cfg.PACKING, oracle=oracle)
    assert pack.tc_misses > base.tc_misses


def test_mispredicts_are_counted(branchy_program):
    result = run(branchy_program, cfg.BASELINE)
    # The flags pattern has a 1-in-8 not-taken; some mispredicts are certain
    # during warmup.
    assert result.stats.cond_mispredicts > 0
    assert result.recoveries > 0


def test_cycle_accounting_covers_all_cycles():
    program = generate_program("compress")
    result = run(program, cfg.BASELINE, n=30_000)
    accounted = sum(result.stats.cycle_accounting.values())
    assert accounted == result.cycles


def test_fetch_histogram_consistency():
    program = generate_program("compress")
    result = run(program, cfg.BASELINE, n=30_000)
    stats = result.stats
    assert sum(stats.size_histogram().values()) == stats.fetches
    assert sum(stats.reason_breakdown().values()) == stats.fetches
    assert sum(n * c for (n, _), c in stats.size_reason_histogram.items()) == \
        stats.useful_instructions


def test_mispredicted_fetches_categorized(branchy_program):
    result = run(branchy_program, cfg.BASELINE)
    reasons = result.stats.reason_breakdown()
    assert reasons.get(FetchReason.MISPRED_BR, 0) > 0


def test_trap_serialization_costs_cycles(loop_program):
    result = run(loop_program, cfg.BASELINE)
    assert result.stats.cycle_accounting[CycleCategory.TRAPS] > 0


def test_indirect_jumps_tracked(switch_program):
    result = run(switch_program, cfg.BASELINE)
    assert result.stats.indirect_jumps > 0


def test_deterministic_results():
    program = generate_program("compress")
    oracle = compute_oracle(program, 20_000)
    a = run(program, cfg.BASELINE, oracle=oracle)
    b = run(program, cfg.BASELINE, oracle=oracle)
    assert a.cycles == b.cycles
    assert a.stats.cond_mispredicts == b.stats.cond_mispredicts


def test_split_predictor_config_runs():
    from dataclasses import replace
    program = generate_program("compress")
    config = replace(cfg.PROMOTION, predictor="split")
    result = run(program, config, n=20_000)
    assert result.instructions_retired == 20_000
