"""Trace cache: lookup, LRU, and the no-path-associativity rule."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.segment import FinalizeReason, SegmentBranch, TraceSegment
from repro.trace.trace_cache import TraceCache


def make_segment(start, length=4, tag=0):
    insts = [Instruction(addr=start + i, op=Opcode.NOP) for i in range(length)]
    # ``tag`` differentiates same-start segments via their length.
    return TraceSegment(start_addr=start, instructions=insts[:length - tag] or insts,
                        finalize_reason=FinalizeReason.MAX_SIZE,
                        next_addr=start + length)


def test_miss_then_hit():
    cache = TraceCache(n_lines=64, assoc=4)
    assert cache.lookup(100) is None
    segment = make_segment(100)
    cache.insert(segment)
    assert cache.lookup(100) is segment
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_no_path_associativity():
    """A new segment starting at the same address replaces the old one,
    even when the path differs (ABC evicts ABD)."""
    cache = TraceCache(n_lines=64, assoc=4)
    abc = make_segment(100, length=4)
    abd = make_segment(100, length=3)
    cache.insert(abc)
    cache.insert(abd)
    assert cache.lookup(100) is abd
    assert cache.stats.overwrites == 1
    assert cache.resident_segments() == 1


def test_set_associative_lru():
    cache = TraceCache(n_lines=4, assoc=2)  # 2 sets
    # Addresses 0, 2, 4 all map to set 0.
    s0, s2, s4 = make_segment(0), make_segment(2), make_segment(4)
    cache.insert(s0)
    cache.insert(s2)
    cache.lookup(0)       # refresh s0
    cache.insert(s4)      # evicts s2
    assert cache.probe(0) is s0
    assert cache.probe(2) is None
    assert cache.probe(4) is s4
    assert cache.stats.replacements == 1


def test_probe_no_stats():
    cache = TraceCache(n_lines=64, assoc=4)
    cache.probe(5)
    assert cache.stats.accesses == 0


def test_different_sets_do_not_conflict():
    cache = TraceCache(n_lines=8, assoc=2)  # 4 sets
    for start in range(4):
        cache.insert(make_segment(start))
    assert cache.resident_segments() == 4


def test_flush():
    cache = TraceCache(n_lines=8, assoc=2)
    cache.insert(make_segment(0))
    cache.flush()
    assert cache.resident_segments() == 0


def test_paper_geometry():
    cache = TraceCache()
    assert cache.n_lines == 2048 and cache.assoc == 4 and cache.n_sets == 512


def test_invalid_geometry():
    with pytest.raises(ValueError):
        TraceCache(n_lines=10, assoc=4)
    with pytest.raises(ValueError):
        TraceCache(n_lines=12, assoc=4)  # 3 sets: not a power of two


def test_hit_rate_property():
    cache = TraceCache(n_lines=8, assoc=2)
    cache.lookup(0)
    cache.insert(make_segment(0))
    cache.lookup(0)
    assert cache.stats.hit_rate == pytest.approx(0.5)
