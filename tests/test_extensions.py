"""Extension features: static promotion, path associativity, inactive-issue
ablation (DESIGN.md section 5 + the paper's discussion sections)."""

from dataclasses import replace

import pytest

from repro import BASELINE, PROMOTION, generate_program
from repro.frontend.simulator import FrontEndSimulator, compute_oracle
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.fill_unit import FillUnit
from repro.trace.segment import FinalizeReason, TraceSegment
from repro.trace.static_promotion import profile_biased_branches
from repro.trace.trace_cache import TraceCache


@pytest.fixture(scope="module")
def program():
    return generate_program("m88ksim")


@pytest.fixture(scope="module")
def oracle(program):
    return compute_oracle(program, 60_000)


# --- static promotion --------------------------------------------------------

def test_profile_finds_biased_branches(program):
    promotions = profile_biased_branches(program, max_instructions=60_000)
    assert len(promotions) > 5
    for promo in promotions.values():
        assert promo.executions >= 32
        assert promo.taken_rate >= 0.95 or promo.taken_rate <= 0.05
        assert promo.direction == (promo.taken_rate >= 0.5)


def test_profile_threshold_validation(program):
    with pytest.raises(ValueError):
        profile_biased_branches(program, bias_threshold=0.4)


def test_static_promotion_needs_no_warmup(program, oracle):
    """Statically promoted branches are promoted from the first fetch."""
    static = FrontEndSimulator(program, replace(BASELINE, promote_static=True),
                               oracle=oracle).run()
    dynamic = FrontEndSimulator(program, PROMOTION, oracle=oracle).run()
    assert static.stats.promoted_branches > 0
    # No warm-up: static promotion covers at least as many executions.
    assert static.stats.promoted_branches >= dynamic.stats.promoted_branches


def test_static_and_dynamic_promotion_exclusive():
    cache = TraceCache(64, 4)
    with pytest.raises(ValueError):
        FillUnit(cache, promote=True, static_promotions={},
                 bias_table=None)


def test_static_promotion_in_fill_unit():
    cache = TraceCache(64, 4)
    from repro.trace.static_promotion import StaticPromotion
    statics = {5: StaticPromotion(addr=5, direction=False, executions=100,
                                  taken_rate=0.01)}
    fill = FillUnit(cache, static_promotions=statics)
    fill.retire(Instruction(addr=4, op=Opcode.NOP))
    fill.retire(Instruction(addr=5, op=Opcode.BNE, rs1=1, rs2=0, target=9),
                taken=False)
    fill.retire(Instruction(addr=6, op=Opcode.RET))
    fill.flush()
    segment = cache.probe(4)
    assert segment is not None
    branch = segment.branch_at(1)
    assert branch.promoted and branch.direction is False


def test_static_promotion_faulting_direction_not_embedded():
    cache = TraceCache(64, 4)
    from repro.trace.static_promotion import StaticPromotion
    statics = {5: StaticPromotion(addr=5, direction=False, executions=100,
                                  taken_rate=0.01)}
    fill = FillUnit(cache, static_promotions=statics)
    fill.retire(Instruction(addr=5, op=Opcode.BNE, rs1=1, rs2=0, target=9),
                taken=True)  # against the static direction
    fill.retire(Instruction(addr=9, op=Opcode.RET))
    fill.flush()
    assert not cache.probe(5).branch_at(0).promoted


# --- path associativity ---------------------------------------------------------

def _segment(start, direction):
    branch_inst = Instruction(addr=start, op=Opcode.BNE, rs1=1, rs2=0,
                              target=start + 10)
    follow = start + 10 if direction else start + 1
    from repro.trace.segment import SegmentBranch
    segment = TraceSegment(
        start_addr=start,
        instructions=[branch_inst, Instruction(addr=follow, op=Opcode.NOP)],
        branches=[SegmentBranch(0, direction, False)],
        finalize_reason=FinalizeReason.MAX_SIZE,
    )
    segment.next_addr = segment.compute_next_addr()
    return segment


def test_path_associativity_keeps_both_paths():
    cache = TraceCache(n_lines=64, assoc=4, path_assoc=True)
    cache.insert(_segment(100, True))
    cache.insert(_segment(100, False))
    assert len(cache.lookup_candidates(100)) == 2


def test_without_path_associativity_second_path_evicts():
    cache = TraceCache(n_lines=64, assoc=4, path_assoc=False)
    cache.insert(_segment(100, True))
    cache.insert(_segment(100, False))
    assert cache.resident_segments() == 1


def test_path_assoc_same_path_overwrites():
    cache = TraceCache(n_lines=64, assoc=4, path_assoc=True)
    cache.insert(_segment(100, True))
    cache.insert(_segment(100, True))
    assert len(cache.lookup_candidates(100)) == 1
    assert cache.stats.overwrites == 1


def test_path_assoc_frontend_runs(program, oracle):
    result = FrontEndSimulator(program, replace(BASELINE, path_associativity=True),
                               oracle=oracle).run()
    assert result.instructions_retired == len(oracle)
    # Path associativity never reduces hit opportunity.
    base = FrontEndSimulator(program, BASELINE, oracle=oracle).run()
    assert result.tc_hits >= 0.9 * base.tc_hits


# --- inactive issue ablation ------------------------------------------------------

def test_disabling_inactive_issue_costs_fetch_rate(program, oracle):
    on = FrontEndSimulator(program, BASELINE, oracle=oracle).run()
    off = FrontEndSimulator(program, replace(BASELINE, inactive_issue=False),
                            oracle=oracle).run()
    assert off.instructions_retired == on.instructions_retired
    assert off.effective_fetch_rate <= on.effective_fetch_rate


def test_inactive_issue_flag_reaches_engine(program):
    from repro.frontend.build import build_engine
    engine = build_engine(program, replace(BASELINE, inactive_issue=False))
    assert not engine.inactive_issue


def test_machine_runs_with_extensions(program):
    """The full machine stays architecturally correct with every extension."""
    from repro.config import MachineConfig
    from repro.core.machine import Machine
    from repro.isa import FunctionalExecutor
    n = 8_000
    reference = FunctionalExecutor(program, max_instructions=n)
    reference.run_to_completion()
    for fe in (replace(BASELINE, promote_static=True),
               replace(BASELINE, path_associativity=True),
               replace(BASELINE, inactive_issue=False)):
        machine = Machine(program, MachineConfig(frontend=fe), max_instructions=n)
        machine.run()
        assert machine.arch_regs == reference.state.regs, fe
