"""Generator internals: context arrays, register discipline, structure."""

import numpy as np
import pytest

from repro.isa import FunctionalExecutor
from repro.isa.opcodes import Opcode
from repro.workloads import generate_program
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def generator():
    gen = WorkloadGenerator(get_profile("compress"))
    gen.generate()
    return gen


def test_every_phase_has_a_context_array(generator):
    assert generator._ctx_counter >= get_profile("compress").n_phases


def test_context_arrays_hold_small_values():
    gen = WorkloadGenerator(get_profile("compress"))
    label, period = gen._new_context_array()
    base = gen.data.symbols[label]
    values = [gen.data.image.get(base + i, 0) for i in range(period)]
    assert all(0 <= v <= 7 for v in values)
    # Slowly varying: consecutive values differ rarely.
    changes = sum(1 for a, b in zip(values, values[1:]) if a != b)
    assert changes < period * 0.5


def test_program_structure_labels():
    program = generate_program("compress")
    profile = get_profile("compress")
    for i in range(profile.n_phases):
        assert f"phase_{i}" in program.symbols
    assert "main" in program.symbols
    assert any(name.startswith("util_") for name in program.symbols)


def test_phase_functions_save_the_link_register():
    """Non-leaf functions must spill r31 or nested calls would corrupt it."""
    program = generate_program("compress")
    phase_addr = program.symbols["phase_0"]
    prologue = program.instructions[phase_addr:phase_addr + 2]
    assert prologue[0].op is Opcode.ADDI and prologue[0].rd == 30
    assert prologue[1].op is Opcode.ST and prologue[1].rs2 == 31


def test_stack_pointer_balances():
    """After any bounded run, SP must sit within the stack region — calls
    and returns balance."""
    from repro.isa.executor import STACK_BASE
    program = generate_program("li")
    executor = FunctionalExecutor(program, max_instructions=30_000)
    executor.run_to_completion()
    sp = executor.state.regs[30]
    assert STACK_BASE - 64 <= sp <= STACK_BASE


def test_jump_tables_target_valid_code():
    program = generate_program("perl")
    limit = len(program)
    for name, base in program.data_symbols.items():
        if not name.startswith("jt_"):
            continue
        offset = 0
        while (base + offset) in program.data and name.startswith("jt_"):
            target = program.data[base + offset]
            if offset == 0 or target:  # table entries are code addresses
                assert 0 <= target < limit
            offset += 1
            if offset > 16:
                break


def test_bias_arrays_are_binary():
    program = generate_program("compress")
    for name, base in program.data_symbols.items():
        if not name.startswith("bias_"):
            continue
        for offset in range(8):
            value = program.data.get(base + offset, 0)
            assert value in (0, 1)


def test_distinct_seeds_change_site_count():
    a = WorkloadGenerator(get_profile("compress"), seed=1)
    b = WorkloadGenerator(get_profile("compress"), seed=2)
    a.generate(); b.generate()
    assert (a._site_counter, len(a.code)) != (b._site_counter, len(b.code))


def test_working_set_validation():
    from dataclasses import replace
    bad = replace(get_profile("compress"), working_set_words=1000)  # not 2^n
    with pytest.raises(ValueError):
        WorkloadGenerator(bad)
