"""Experiment definitions and reporting (run on a reduced benchmark set)."""

import pytest

from repro.experiments import (
    clear_caches,
    fetch_breakdown,
    figure9_rows,
    figure10_rows,
    figure11_rows,
    figure12_rows,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.frontend.stats import CycleCategory, FetchReason
from repro.report import format_bar_chart, format_histogram, format_table

SMALL = ["compress", "m88ksim"]
N = 30_000


@pytest.fixture(autouse=True, scope="module")
def _short_runs(request):
    # Keep experiment tests fast: short runs via the runner's n argument is
    # not exposed here, so monkeypatch default lengths.
    import repro.experiments.runner as runner
    original_default = runner.default_length
    original_machine = runner.machine_length
    runner.default_length = lambda b: N
    runner.machine_length = lambda b: N // 3
    clear_caches()
    yield
    runner.default_length = original_default
    runner.machine_length = original_machine
    clear_caches()


def test_table1_covers_all_benchmarks():
    rows = table1_rows()
    assert len(rows) == 15
    assert {row["benchmark"] for row in rows} == {
        "compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex",
        "gnuchess", "gs", "pgp", "python", "plot", "ss", "tex"}
    for row in rows:
        assert row["static_instructions"] > 500


def test_fetch_breakdown_structure():
    data = fetch_breakdown("compress")
    assert 0 < data["avg"] <= 16
    assert abs(sum(data["reasons"].values()) - 1.0) < 1e-6
    assert abs(sum(data["histogram"].values()) - 1.0) < 1e-6
    assert all(isinstance(reason, FetchReason) for _s, reason in data["histogram"])


def test_table2_shape():
    rows = table2_rows(benchmarks=SMALL, thresholds=(16, 64))
    labels = [row["configuration"] for row in rows]
    assert labels == ["icache", "baseline", "threshold = 16", "threshold = 64"]
    efr = {row["configuration"]: row["efr"] for row in rows}
    assert efr["baseline"] > efr["icache"]


def test_table3_promotion_reduces_prediction_demand():
    rows = table3_rows(benchmarks=SMALL)
    base, promo = rows
    assert promo["0 or 1"] > base["0 or 1"]
    for row in rows:
        assert row["0 or 1"] + row["2"] + row["3"] == pytest.approx(1.0)


def test_figure9_rows():
    rows = figure9_rows(benchmarks=SMALL)
    assert {row["benchmark"] for row in rows} == set(SMALL)
    for row in rows:
        assert row["pct_increase"] == pytest.approx(
            100 * (row["packing"] / row["baseline"] - 1), abs=0.01)


def test_figure10_has_five_configs():
    rows = figure10_rows(benchmarks=["compress"])
    row = rows[0]
    for key in ("icache", "baseline", "packing", "promotion", "promotion,packing"):
        assert key in row
    assert row["baseline"] > row["icache"]


def test_table4_structure():
    data = table4_rows(benchmarks=["compress"])
    row = data["rows"][0]
    for key in ("unreg", "cost-reg", "n=2", "n=4"):
        assert key in row
        assert key in data["avg_efr"]


def test_figure11_ipc_rows():
    rows = figure11_rows(benchmarks=["compress"])
    row = rows[0]
    assert 0 < row["icache"] < 16
    assert 0 < row["baseline"] < 16
    assert "pct_new_over_baseline" in row


def test_figure12_fractions_sum_to_100():
    rows = figure12_rows(benchmarks=["compress"])
    total = sum(v for k, v in rows[0].items() if k != "benchmark")
    assert total == pytest.approx(100.0, abs=1.0)


# --- report formatting -----------------------------------------------------------

def test_format_table():
    text = format_table(["a", "bb"], [[1, 2.5], ["x", 3]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "2.50" in text


def test_format_bar_chart():
    text = format_bar_chart({"x": 2.0, "y": -1.0}, width=10)
    assert "##########" in text
    assert "-#####" in text


def test_format_histogram():
    text = format_histogram({1: 0.5, 2: 0.25})
    assert "size  1" in text and "size  2" in text


def test_format_bar_chart_empty():
    assert format_bar_chart({}, title="empty") == "empty"
