"""The two-pass assembler: syntax, label resolution, error reporting."""

import pytest

from repro.isa import assemble, AssemblerError
from repro.isa.opcodes import Opcode


def test_minimal_program():
    program = assemble("HALT")
    assert len(program) == 1
    assert program.instructions[0].op is Opcode.HALT


def test_entry_defaults_to_main_label():
    program = assemble("""
fn:     RET
main:   HALT
""")
    assert program.entry == program.symbols["main"] == 1


def test_entry_defaults_to_zero_without_main():
    program = assemble("NOP\nHALT")
    assert program.entry == 0


def test_forward_and_backward_branch_targets():
    program = assemble("""
main:   JMP fwd
back:   HALT
fwd:    JMP back
""")
    assert program.instructions[0].target == program.symbols["fwd"]
    assert program.instructions[2].target == program.symbols["back"]


def test_data_words_and_space():
    program = assemble("""
        .data
a:      .words 1 2 3
b:      .space 4
c:      .words 9
        .text
main:   HALT
""")
    assert program.data_symbols == {"a": 0, "b": 3, "c": 7}
    assert program.data[0] == 1 and program.data[2] == 3 and program.data[7] == 9
    assert 3 not in program.data  # .space is zero-filled (sparse)


def test_data_label_as_immediate():
    program = assemble("""
        .data
x:      .words 7
buf:    .words 0
        .text
main:   ADDI r1, r0, buf
        HALT
""")
    assert program.instructions[0].imm == 1


def test_load_store_displacement_with_data_label():
    program = assemble("""
        .data
arr:    .words 1 2 3
        .text
main:   LD r1, arr(r2)
        ST r1, arr(r2)
        HALT
""")
    assert program.instructions[0].imm == 0
    assert program.instructions[1].imm == 0
    assert program.instructions[0].rs1 == 2
    assert program.instructions[1].rs2 == 1


def test_negative_and_hex_immediates():
    program = assemble("main: ADDI r1, r0, -5\n ADDI r2, r0, 0x1f\n HALT")
    assert program.instructions[0].imm == -5
    assert program.instructions[1].imm == 31


def test_comments_stripped():
    program = assemble("""
main:   NOP        ; a comment
        NOP        # another
        HALT
""")
    assert len(program) == 3


def test_label_on_own_line():
    program = assemble("""
main:
        NOP
        HALT
""")
    assert program.symbols["main"] == 0


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("main: FROB r1, r2, r3")


def test_undefined_label():
    with pytest.raises(AssemblerError):
        assemble("main: JMP nowhere")


def test_duplicate_label():
    with pytest.raises(AssemblerError, match="duplicate"):
        assemble("a: NOP\na: NOP")


def test_wrong_operand_count():
    with pytest.raises(AssemblerError, match="expects"):
        assemble("main: ADD r1, r2")


def test_bad_register():
    with pytest.raises(AssemblerError):
        assemble("main: ADD r1, r2, r99")
    with pytest.raises(AssemblerError, match="expected register"):
        assemble("main: ADD r1, r2, 5")


def test_bad_memory_operand():
    with pytest.raises(AssemblerError, match="disp"):
        assemble("main: LD r1, r2")


def test_instruction_in_data_section():
    with pytest.raises(AssemblerError, match="outside .text"):
        assemble(".data\nNOP")


def test_words_outside_data_section():
    with pytest.raises(AssemblerError):
        assemble(".words 1 2 3")


def test_error_carries_line_number():
    try:
        assemble("NOP\nNOP\nBROKEN")
    except AssemblerError as exc:
        assert exc.line_no == 3
    else:
        pytest.fail("expected AssemblerError")


def test_round_trip_disassembly():
    """Disassembling and reassembling gives the same instruction stream."""
    source = """
main:   ADDI r1, r0, 3
        ADD r2, r1, r1
        LD r3, 5(r2)
        ST r3, 6(r2)
        BNE r1, r0, 0
        JMP 0
        CALL 0
        JR r3
        TRAP
        RET
        HALT
"""
    first = assemble(source)
    rebuilt = assemble("\n".join(i.disassemble() for i in first.instructions))
    assert [i.disassemble() for i in rebuilt.instructions] == \
        [i.disassemble() for i in first.instructions]


def test_case_insensitive_mnemonics():
    program = assemble("main: addi r1, r0, 1\n halt")
    assert program.instructions[0].op is Opcode.ADDI
