"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings, strategies as st

from repro.branch import GlobalHistory, SaturatingCounters
from repro.isa.executor import step_instruction
from repro.isa.instruction import NUM_REGS, Instruction
from repro.isa.opcodes import Opcode
from repro.mem import SetAssocCache
from repro.trace.bias_table import BranchBiasTable
from repro.trace.trace_cache import TraceCache
from repro.trace.segment import FinalizeReason, TraceSegment


# --- saturating counters ----------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=200),
       st.integers(1, 4))
def test_counters_stay_in_range(updates, bits):
    counters = SaturatingCounters(64, bits=bits)
    for index, taken in updates:
        counters.update(index, taken)
        assert 0 <= counters.value(index) <= counters.max_value


@given(st.lists(st.booleans(), min_size=1, max_size=100))
def test_counter_converges_to_constant_stream(outcomes):
    """After 2^bits same-direction updates, the prediction matches."""
    counters = SaturatingCounters(1)
    direction = outcomes[0]
    for _ in range(4):
        counters.update(0, direction)
    assert counters.predict(0) == direction


# --- global history ------------------------------------------------------------

@given(st.lists(st.booleans(), max_size=64), st.integers(1, 24))
def test_history_equals_low_bits_of_sequence(pushes, bits):
    ghr = GlobalHistory(bits)
    value = 0
    for outcome in pushes:
        ghr.push(outcome)
        value = ((value << 1) | int(outcome)) & ghr.mask
    assert ghr.value == value


@given(st.lists(st.booleans(), min_size=1, max_size=32))
def test_history_restore_is_exact(pushes):
    ghr = GlobalHistory(16)
    snap = ghr.snapshot()
    for outcome in pushes:
        ghr.push(outcome)
    ghr.restore(snap)
    assert ghr.value == snap


# --- caches ----------------------------------------------------------------------

@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
def test_cache_repeat_access_always_hits(addresses):
    cache = SetAssocCache(1024, assoc=2, line_bytes=32)
    for addr in addresses:
        cache.access(addr)
        assert cache.access(addr)  # immediate re-access must hit


@given(st.lists(st.integers(0, 1 << 16), max_size=300))
def test_cache_occupancy_bounded(addresses):
    cache = SetAssocCache(1024, assoc=2, line_bytes=32)
    for addr in addresses:
        cache.access(addr)
    assert cache.resident_lines() <= cache.n_sets * cache.assoc


@given(st.lists(st.integers(0, 1 << 16), max_size=300))
def test_cache_stats_partition_accesses(addresses):
    cache = SetAssocCache(512, assoc=4, line_bytes=32)
    for addr in addresses:
        cache.access(addr)
    assert cache.stats.hits + cache.stats.misses == len(addresses)


# --- bias table ---------------------------------------------------------------

@given(st.lists(st.booleans(), min_size=1, max_size=400))
def test_bias_count_never_exceeds_run_length(outcomes):
    table = BranchBiasTable(entries=16, threshold=8)
    run = 0
    previous = None
    for outcome in outcomes:
        entry = table.update(5, outcome)
        run = run + 1 if outcome == previous else 1
        previous = outcome
        assert entry.count <= max(run, 1)
        assert entry.direction == outcome


@given(st.lists(st.booleans(), min_size=8, max_size=400))
def test_promotion_implies_a_qualifying_run(outcomes):
    threshold = 8
    table = BranchBiasTable(entries=16, threshold=threshold)
    longest = run = 0
    previous = None
    for outcome in outcomes:
        run = run + 1 if outcome == previous else 1
        previous = outcome
        longest = max(longest, run)
        table.update(5, outcome)
    if table.is_promoted(5):
        assert longest >= threshold


# --- trace cache ---------------------------------------------------------------

def _segment(start):
    return TraceSegment(
        start_addr=start,
        instructions=[Instruction(addr=start, op=Opcode.NOP)],
        finalize_reason=FinalizeReason.MAX_SIZE,
        next_addr=start + 1,
    )


@given(st.lists(st.integers(0, 4000), max_size=300))
def test_trace_cache_no_duplicate_start_addresses(starts):
    cache = TraceCache(n_lines=64, assoc=4)
    for start in starts:
        cache.insert(_segment(start))
        # No path associativity: at most one resident segment per start.
        seen = set()
        for ways in cache._sets:
            for segment in ways:
                assert segment.start_addr not in seen
                seen.add(segment.start_addr)


@given(st.lists(st.integers(0, 4000), max_size=200))
def test_trace_cache_occupancy_bounded(starts):
    cache = TraceCache(n_lines=16, assoc=4)
    for start in starts:
        cache.insert(_segment(start))
    assert cache.resident_segments() <= 16


# --- executor ---------------------------------------------------------------------

@given(st.integers(0, (1 << 64) - 1), st.integers(0, (1 << 64) - 1),
       st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                        Opcode.XOR, Opcode.MUL]))
def test_alu_results_stay_in_64_bits(a, b, op):
    regs = [0] * NUM_REGS
    regs[1], regs[2] = a, b
    inst = Instruction(addr=0, op=op, rd=3, rs1=1, rs2=2)
    step_instruction(inst, regs, lambda _a: 0, lambda _a, _v: None)
    assert 0 <= regs[3] < (1 << 64)


@given(st.integers(0, (1 << 64) - 1), st.integers(0, (1 << 64) - 1))
def test_branch_taken_agrees_with_equality(a, b):
    regs = [0] * NUM_REGS
    regs[1], regs[2] = a, b
    beq = Instruction(addr=0, op=Opcode.BEQ, rs1=1, rs2=2, target=9)
    bne = Instruction(addr=0, op=Opcode.BNE, rs1=1, rs2=2, target=9)
    r_eq = step_instruction(beq, regs, lambda _a: 0, lambda _a, _v: None)
    r_ne = step_instruction(bne, regs, lambda _a: 0, lambda _a, _v: None)
    assert r_eq.taken == (a == b)
    assert r_eq.taken != r_ne.taken


@given(st.integers(0, 1 << 20), st.integers(0, (1 << 64) - 1))
def test_store_then_load_roundtrip(addr, value):
    regs = [0] * NUM_REGS
    regs[1], regs[2] = addr, value
    memory = {}
    store = Instruction(addr=0, op=Opcode.ST, rs1=1, rs2=2)
    load = Instruction(addr=1, op=Opcode.LD, rd=3, rs1=1)
    step_instruction(store, regs, lambda a: memory.get(a, 0),
                     lambda a, v: memory.__setitem__(a, v))
    step_instruction(load, regs, lambda a: memory.get(a, 0),
                     lambda a, v: memory.__setitem__(a, v))
    assert regs[3] == value


# --- fill unit conservation --------------------------------------------------

from repro.isa.executor import FunctionalExecutor
from repro.trace.bias_table import BranchBiasTable
from repro.trace.fill_unit import FillUnit, PackingPolicy


@given(st.sampled_from(list(PackingPolicy)), st.booleans(),
       st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_fill_unit_conserves_the_retire_stream(policy, promote, seed_index):
    """Whatever the policy, the finalized segments concatenate back to
    exactly the retired instruction stream: nothing lost, duplicated or
    reordered, and every segment valid (checked at insert)."""
    from repro.workloads import generate_program
    program = generate_program(["compress", "li", "plot"][seed_index % 3])
    cache = TraceCache(n_lines=256, assoc=4)
    segments = []
    original_insert = cache.insert

    def recording_insert(segment):
        segments.append(segment)
        original_insert(segment)

    cache.insert = recording_insert
    bias = BranchBiasTable(entries=128, threshold=8) if promote else None
    fill = FillUnit(cache, bias_table=bias, policy=policy, promote=promote)

    retired = []
    executor = FunctionalExecutor(program, max_instructions=1500)
    for dyn in executor.run():
        retired.append(dyn.inst.addr)
        fill.retire(dyn.inst, dyn.result.taken)
    fill.flush()

    rebuilt = [inst.addr for segment in segments for inst in segment.instructions]
    assert rebuilt == retired


# --- assembler round trip ------------------------------------------------------

_reg = st.integers(0, 31)


@st.composite
def _random_instruction(draw, addr, code_size):
    op = draw(st.sampled_from(list(Opcode)))
    target = draw(st.integers(0, code_size - 1))
    imm = draw(st.integers(-4096, 4096))
    from repro.isa.opcodes import BRANCH_OPS, REG3_OPS, REG_IMM_OPS
    if op in REG3_OPS:
        return Instruction(addr, op, rd=draw(_reg), rs1=draw(_reg), rs2=draw(_reg))
    if op in REG_IMM_OPS:
        return Instruction(addr, op, rd=draw(_reg), rs1=draw(_reg), imm=imm)
    if op is Opcode.LUI:
        return Instruction(addr, op, rd=draw(_reg), imm=imm)
    if op is Opcode.LD:
        return Instruction(addr, op, rd=draw(_reg), rs1=draw(_reg), imm=imm)
    if op is Opcode.ST:
        return Instruction(addr, op, rs1=draw(_reg), rs2=draw(_reg), imm=imm)
    if op in BRANCH_OPS:
        return Instruction(addr, op, rs1=draw(_reg), rs2=draw(_reg), target=target)
    if op in (Opcode.JMP, Opcode.CALL):
        return Instruction(addr, op, target=target)
    if op is Opcode.JR:
        return Instruction(addr, op, rs1=draw(_reg))
    return Instruction(addr, op)


@st.composite
def _random_program(draw):
    size = draw(st.integers(1, 24))
    return [draw(_random_instruction(addr, size)) for addr in range(size)]


@given(_random_program())
@settings(max_examples=50, deadline=None)
def test_assembler_round_trips_any_instruction_stream(instructions):
    """disassemble -> assemble reproduces every instruction exactly."""
    from repro.isa import assemble
    source = "\n".join(inst.disassemble() for inst in instructions)
    program = assemble(source)
    assert len(program) == len(instructions)
    for original, parsed in zip(instructions, program.instructions):
        assert parsed.op is original.op
        assert parsed.disassemble() == original.disassemble()
