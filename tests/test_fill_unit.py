"""The fill unit: block formation, every packing policy, promotion."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.bias_table import BranchBiasTable
from repro.trace.fill_unit import FillUnit, PackingPolicy
from repro.trace.segment import FinalizeReason
from repro.trace.trace_cache import TraceCache


class Harness:
    """Feeds a synthetic retire stream and records finalized segments."""

    def __init__(self, policy=PackingPolicy.ATOMIC, promote=False, threshold=4):
        self.cache = TraceCache(n_lines=512, assoc=4)
        self.segments = []
        original_insert = self.cache.insert

        def recording_insert(segment):
            self.segments.append(segment)
            original_insert(segment)

        self.cache.insert = recording_insert
        bias = BranchBiasTable(entries=256, threshold=threshold) if promote else None
        self.fill = FillUnit(self.cache, bias_table=bias, policy=policy, promote=promote)
        self.addr = 0

    def straightline(self, n):
        for _ in range(n):
            self.fill.retire(Instruction(addr=self.addr, op=Opcode.NOP))
            self.addr += 1

    def block(self, n, taken=False):
        """n-1 NOPs followed by a conditional branch."""
        self.straightline(n - 1)
        target = self.addr + 10 if taken else self.addr + 1
        self.fill.retire(
            Instruction(addr=self.addr, op=Opcode.BNE, rs1=1, rs2=0, target=target),
            taken=taken,
        )
        self.addr = target if taken else self.addr + 1

    def ret(self):
        self.fill.retire(Instruction(addr=self.addr, op=Opcode.RET))
        self.addr += 17  # arbitrary: next fetch elsewhere

    def flush(self):
        self.fill.flush()
        return self.segments


# --- block formation -----------------------------------------------------

def test_blocks_merge_atomically_when_they_fit():
    h = Harness()
    h.block(5)
    h.block(5)
    h.block(5)
    segments = h.flush()
    # 5+5+5 = 15 <= 16 with 3 branches: one segment.
    assert len(segments) == 1
    assert len(segments[0]) == 15
    assert segments[0].num_dynamic_branches == 3


def test_atomic_block_that_does_not_fit_finalizes_pending():
    h = Harness()
    h.block(13)
    h.block(9)  # 13 + 9 > 16 -> pending finalized at 13
    segments = h.flush()
    assert len(segments[0]) == 13
    assert segments[0].finalize_reason is FinalizeReason.ATOMIC_BLOCK
    assert len(segments[1]) == 9


def test_max_branches_finalizes():
    h = Harness()
    for _ in range(4):
        h.block(3)  # 4th branch cannot enter: 3-branch limit
    segments = h.flush()
    assert segments[0].finalize_reason is FinalizeReason.MAX_BRANCHES
    assert segments[0].num_dynamic_branches == 3
    assert len(segments[0]) == 9


def test_exact_16_finalizes_max_size():
    h = Harness()
    h.block(8)
    h.block(8)
    segments = h.flush()
    assert len(segments[0]) == 16
    assert segments[0].finalize_reason is FinalizeReason.MAX_SIZE


def test_return_ends_segment():
    h = Harness()
    h.block(4)
    h.ret()
    segments = h.flush()
    assert segments[0].finalize_reason is FinalizeReason.SEG_ENDER
    assert segments[0].instructions[-1].op is Opcode.RET


def test_straightline_fragment_cap():
    h = Harness()
    h.straightline(40)
    segments = h.flush()
    assert [len(s) for s in segments[:2]] == [16, 16]


def test_taken_branches_create_discontiguous_segments():
    h = Harness()
    h.block(4, taken=True)
    h.block(4, taken=True)
    segments = h.flush()
    segment = segments[0]
    assert len(segment) == 8
    # Validation (contiguity along embedded path) already ran at insert;
    # check the embedded directions survived.
    assert all(b.direction for b in segment.branches)


def test_uncond_jump_does_not_end_block():
    h = Harness()
    h.straightline(3)
    h.fill.retire(Instruction(addr=h.addr, op=Opcode.JMP, target=h.addr + 5))
    h.addr += 5
    h.straightline(3)
    h.block(2)
    segments = h.flush()
    assert len(segments[0]) == 9  # 3 + JMP + 3 + block(2), one segment


# --- packing policies ------------------------------------------------------

def test_unregulated_packing_fills_to_16():
    h = Harness(policy=PackingPolicy.UNREGULATED)
    h.block(13)
    h.block(9)
    segments = h.flush()
    assert len(segments[0]) == 16
    assert segments[0].finalize_reason is FinalizeReason.MAX_SIZE
    # Remainder of the split block starts the next segment.
    assert len(segments[1]) == 6


def test_packing_example_from_the_paper():
    """5 free slots, incoming block of 9: 5 finish the segment, 4 start
    the next one."""
    h = Harness(policy=PackingPolicy.UNREGULATED)
    h.block(11)  # pending 11
    h.block(9)
    segments = h.flush()
    assert len(segments[0]) == 16
    assert len(segments[1]) == 4


def test_packing_respects_branch_limit():
    h = Harness(policy=PackingPolicy.UNREGULATED)
    h.block(2)
    h.block(2)
    h.block(2)
    h.block(4)  # its branch would be the 4th
    segments = h.flush()
    assert segments[0].num_dynamic_branches == 3
    assert segments[0].finalize_reason is FinalizeReason.MAX_BRANCHES
    assert len(segments[0]) == 9  # 2+2+2 plus 3 of the split block


def test_chunk2_splits_at_even_offsets():
    h = Harness(policy=PackingPolicy.CHUNK2)
    h.block(13)
    h.block(9)  # free 3 -> only 2 instructions may enter
    segments = h.flush()
    assert len(segments[0]) == 15
    assert len(segments[1]) == 7


def test_chunk4_may_refuse_small_splits():
    h = Harness(policy=PackingPolicy.CHUNK4)
    h.block(14)
    h.block(9)  # free 2 < 4 -> nothing enters; behaves atomically
    segments = h.flush()
    assert len(segments[0]) == 14
    assert segments[0].finalize_reason is FinalizeReason.ATOMIC_BLOCK
    assert len(segments[1]) == 9


def test_cost_regulated_packs_only_when_cheap():
    # Pending of 12: free slots (4) < half of 12 -> refuse to split.
    h = Harness(policy=PackingPolicy.COST_REGULATED)
    h.block(12)
    h.block(9)
    segments = h.flush()
    assert len(segments[0]) == 12
    assert segments[0].finalize_reason is FinalizeReason.ATOMIC_BLOCK


def test_cost_regulated_packs_when_half_free():
    # Pending of 8: free slots (8) >= half of 8 -> split allowed.
    h = Harness(policy=PackingPolicy.COST_REGULATED)
    h.block(8)
    h.block(10)
    segments = h.flush()
    assert len(segments[0]) == 16


def test_cost_regulated_packs_tight_loops():
    """A pending backward branch with displacement <= 32 allows packing."""
    h = Harness(policy=PackingPolicy.COST_REGULATED)
    h.straightline(11)
    # Backward loop branch: target well within 32 instructions.
    h.fill.retire(
        Instruction(addr=h.addr, op=Opcode.BNE, rs1=1, rs2=0, target=h.addr - 8),
        taken=True,
    )
    h.addr -= 8
    h.block(9)  # pending 12, free 4 < 6; but the loop branch allows packing
    segments = h.flush()
    assert len(segments[0]) == 16


def test_policy_granules():
    assert PackingPolicy.UNREGULATED.granule == 1
    assert PackingPolicy.CHUNK2.granule == 2
    assert PackingPolicy.CHUNK4.granule == 4
    assert not PackingPolicy.ATOMIC.packs
    assert PackingPolicy.COST_REGULATED.packs


# --- promotion -------------------------------------------------------------

def test_promotion_requires_bias_table():
    with pytest.raises(ValueError):
        FillUnit(TraceCache(64, 4), promote=True)


def _promote(h, addr, times, taken=False):
    """Retire a tiny valid trace ending in RET ``times`` times so the
    branch at ``addr`` accumulates consecutive outcomes."""
    target = addr + 10 if taken else addr + 1
    for _ in range(times):
        h.fill.retire(Instruction(addr=addr, op=Opcode.BNE, rs1=1, rs2=0, target=target),
                      taken=taken)
        h.fill.retire(Instruction(addr=target, op=Opcode.RET))
    h.fill.flush()
    h.segments.clear()


def test_promoted_branch_does_not_end_block():
    h = Harness(promote=True, threshold=2)
    _promote(h, 100, times=3)
    assert h.fill.bias_table.is_promoted(100)
    # Retire the promoted branch inside a run: it must merge into one block.
    h.fill.retire(Instruction(addr=99, op=Opcode.NOP))
    h.fill.retire(Instruction(addr=100, op=Opcode.BNE, rs1=1, rs2=0, target=101),
                  taken=False)
    h.fill.retire(Instruction(addr=101, op=Opcode.NOP))
    h.fill.retire(Instruction(addr=102, op=Opcode.NOP))
    h.addr = 103
    h.block(2)
    segments = h.flush()
    segment = segments[0]
    assert len(segment) == 6
    assert segment.num_dynamic_branches == 1
    assert len(segment.promoted_branches) == 1


def test_promoted_branches_do_not_consume_branch_budget():
    h = Harness(promote=True, threshold=2)
    _promote(h, 100, times=3)
    # Three dynamic branches plus the promoted one in a single segment.
    h.fill.retire(Instruction(addr=98, op=Opcode.BNE, rs1=1, rs2=0, target=99), taken=False)
    h.fill.retire(Instruction(addr=99, op=Opcode.BNE, rs1=1, rs2=0, target=100), taken=False)
    h.fill.retire(Instruction(addr=100, op=Opcode.BNE, rs1=1, rs2=0, target=101),
                  taken=False)  # promoted
    h.fill.retire(Instruction(addr=101, op=Opcode.BNE, rs1=1, rs2=0, target=102), taken=False)
    h.fill.retire(Instruction(addr=102, op=Opcode.RET))
    segments = h.flush()
    assert len(segments) == 1
    segment = segments[0]
    assert len(segment) == 5
    assert segment.num_dynamic_branches == 3
    assert len(segment.promoted_branches) == 1


def test_faulting_outcome_is_not_embedded_as_promoted():
    """A retired outcome against the promoted direction must not be
    embedded with the (contradictory) static prediction."""
    h = Harness(promote=True, threshold=2)
    _promote(h, 100, times=4)
    # Retire the branch once in the opposite (faulting) direction.
    h.fill.retire(Instruction(addr=100, op=Opcode.BNE, rs1=1, rs2=0, target=110),
                  taken=True)
    h.fill.retire(Instruction(addr=110, op=Opcode.RET))
    segments = h.flush()
    branch = segments[0].branches[0]
    assert branch.direction is True
    assert not branch.promoted  # embedded as a normal dynamic branch


def test_retiring_branch_without_outcome_rejected():
    h = Harness()
    with pytest.raises(ValueError):
        h.fill.retire(Instruction(addr=0, op=Opcode.BNE, rs1=1, rs2=0, target=5))


def test_finalize_reason_counter():
    h = Harness()
    h.block(8)
    h.block(8)
    h.flush()
    assert h.fill.finalize_reasons[FinalizeReason.MAX_SIZE] == 1
    assert h.fill.segments_built >= 1


def test_segments_are_written_to_the_cache():
    h = Harness()
    h.block(5)
    h.ret()
    h.flush()
    assert h.cache.probe(0) is not None


# --- chunk-policy and boundary edge cases -------------------------------------

def test_chunk2_respects_branch_budget_when_splitting():
    """With 3 pending branches, the split must exclude the incoming
    block's branch AND stay on an even offset."""
    h = Harness(policy=PackingPolicy.CHUNK2)
    h.block(3)
    h.block(3)
    h.block(3)      # 9 instructions, 3 branches
    h.block(6)      # 5 non-branch + branch; budget allows 5, granule -> 4
    segments = h.flush()
    first = segments[0]
    assert first.num_dynamic_branches == 3
    assert len(first) == 13  # 9 + 4 (even split, branch excluded)
    assert first.finalize_reason is FinalizeReason.MAX_BRANCHES


def test_single_instruction_blocks():
    h = Harness()
    for _ in range(5):
        h.block(1)  # lone branches
    segments = h.flush()
    assert segments[0].num_dynamic_branches == 3
    assert len(segments[0]) == 3


def test_seg_ender_on_a_full_segment():
    h = Harness(policy=PackingPolicy.UNREGULATED)
    h.straightline(15)
    h.ret()
    segments = h.flush()
    assert len(segments[0]) == 16
    assert segments[0].finalize_reason is FinalizeReason.SEG_ENDER


def test_flush_with_empty_state_is_noop():
    h = Harness()
    h.flush()
    assert h.segments == []
    h.fill.flush()
    assert h.segments == []


def test_note_recovery_cuts_pending():
    h = Harness()
    h.block(5)
    h.fill.note_recovery()
    segments = h.segments
    assert len(segments) == 1
    assert segments[0].finalize_reason is FinalizeReason.RECOVERY
    # Filling continues cleanly afterwards.
    h.addr = segments[0].next_addr
    h.block(4)
    h.ret()
    h.flush()
    assert len(h.segments) == 2


def test_note_recovery_with_partial_block():
    """A recovery mid-block finalizes both the buffered fragment and the
    pending segment."""
    h = Harness()
    h.block(4)
    h.straightline(3)  # un-terminated block in the buffer
    h.fill.note_recovery()
    assert len(h.segments) == 1
    assert len(h.segments[0]) == 7


def test_note_recovery_when_idle_is_noop():
    h = Harness()
    h.fill.note_recovery()
    assert h.segments == []


def test_cost_regulated_empty_pending_always_packs():
    h = Harness(policy=PackingPolicy.COST_REGULATED)
    h.straightline(20)  # 16-cap fragment + remainder, no pending at start
    segments = h.flush()
    assert len(segments[0]) == 16
