"""End-to-end invariants across front ends, core models and benchmarks."""

import pytest

from repro import (
    BASELINE,
    ICACHE,
    PROMOTION,
    PROMOTION_COST_REG,
    PROMOTION_PACKING,
    MachineConfig,
    CoreConfig,
    simulate_frontend,
    simulate_machine,
)
from repro.frontend.simulator import compute_oracle, FrontEndSimulator
from repro.isa import FunctionalExecutor
from repro.workloads import generate_program


@pytest.fixture(scope="module")
def programs():
    return {name: generate_program(name) for name in ("compress", "m88ksim", "plot")}


@pytest.fixture(scope="module")
def oracles(programs):
    return {name: compute_oracle(program, 100_000) for name, program in programs.items()}


def frontend(programs, oracles, name, config):
    return FrontEndSimulator(programs[name], config, oracle=oracles[name]).run()


@pytest.mark.parametrize("bench", ["compress", "m88ksim", "plot"])
def test_trace_cache_lifts_fetch_rate(programs, oracles, bench):
    """The trace cache's raison d'etre: EFR well above one fetch block."""
    icache = frontend(programs, oracles, bench, ICACHE)
    baseline = frontend(programs, oracles, bench, BASELINE)
    assert baseline.effective_fetch_rate > 1.25 * icache.effective_fetch_rate


@pytest.mark.parametrize("bench", ["compress", "m88ksim"])
def test_both_techniques_beat_baseline(programs, oracles, bench):
    """The headline claim: promotion + packing lifts the fetch rate."""
    baseline = frontend(programs, oracles, bench, BASELINE)
    both = frontend(programs, oracles, bench, PROMOTION_PACKING)
    assert both.effective_fetch_rate > 1.03 * baseline.effective_fetch_rate


def test_promotion_shifts_prediction_demand(programs, oracles):
    base = frontend(programs, oracles, "m88ksim", BASELINE)
    promo = frontend(programs, oracles, "m88ksim", PROMOTION)
    assert promo.stats.predictions_buckets()["0 or 1"] > \
        base.stats.predictions_buckets()["0 or 1"] + 0.1


def test_flaky_benchmark_faults_more_at_low_threshold(programs, oracles):
    """plot's nearly-biased branches promote prematurely at threshold 64
    but mostly escape promotion at 256 (the paper's Figure 7 story)."""
    from repro import promotion_with_threshold
    low = frontend(programs, oracles, "plot", promotion_with_threshold(64))
    high = frontend(programs, oracles, "plot", promotion_with_threshold(256))
    assert low.stats.promoted_faults > high.stats.promoted_faults


def test_frontend_and_machine_agree_on_retirement(programs):
    program = programs["compress"]
    n = 10_000
    front = FrontEndSimulator(program, BASELINE, max_instructions=n).run()
    machine = simulate_machine(program, MachineConfig(frontend=BASELINE),
                               max_instructions=n)
    assert front.instructions_retired == machine.retired == n


def test_machine_stack_is_consistent(programs):
    """After any run, the speculative call stack can't be corrupted:
    architectural SP must match the functional run's."""
    from repro.core.machine import Machine
    from repro.isa.instruction import REG_SP
    program = programs["m88ksim"]
    n = 10_000
    reference = FunctionalExecutor(program, max_instructions=n)
    reference.run_to_completion()
    machine = Machine(program, MachineConfig(frontend=PROMOTION_COST_REG),
                      max_instructions=n)
    machine.run()
    assert machine.arch_regs[REG_SP] == reference.state.regs[REG_SP]


def test_perfect_core_improves_promotion_more(programs):
    """Figure 16's qualitative story: the aggressive core lets the better
    front end stretch its legs (new config gains at least as much from
    perfect disambiguation as the baseline does)."""
    program = programs["m88ksim"]
    n = 20_000
    results = {}
    for label, fe in (("base", BASELINE), ("new", PROMOTION_COST_REG)):
        for perfect in (False, True):
            config = MachineConfig(frontend=fe,
                                   core=CoreConfig(perfect_disambiguation=perfect))
            results[(label, perfect)] = simulate_machine(program, config,
                                                         max_instructions=n).ipc
    gain_base = results[("base", True)] / results[("base", False)]
    gain_new = results[("new", True)] / results[("new", False)]
    assert gain_new > 0.95 * gain_base  # at least comparable


def test_all_fifteen_benchmarks_run_the_frontend():
    """Smoke coverage: every profile generates and simulates cleanly."""
    from repro.workloads.profiles import BENCHMARK_NAMES
    for name in BENCHMARK_NAMES:
        program = generate_program(name)
        result = simulate_frontend(program, BASELINE, max_instructions=4_000)
        assert result.instructions_retired == 4_000


def test_drivers_agree_on_the_retired_branch_population(programs):
    """The front-end simulator and the machine retire the same correct
    path, so their branch counts must match exactly."""
    program = programs["compress"]
    n = 12_000
    front = FrontEndSimulator(program, BASELINE, max_instructions=n).run()
    machine_run = simulate_machine(program, MachineConfig(frontend=BASELINE),
                                   max_instructions=n)
    front_branches = front.stats.cond_branches + front.stats.promoted_branches
    machine_branches = machine_run.cond_branches + machine_run.promoted_branches
    assert front_branches == machine_branches
    assert front.stats.indirect_jumps == machine_run.indirect_jumps
