"""Configuration presets and helpers."""

import pytest

from repro import config as cfg
from repro.config import CoreConfig, FrontEndConfig, MachineConfig
from repro.trace.fill_unit import PackingPolicy


def test_paper_presets():
    assert cfg.ICACHE.kind == "icache"
    assert cfg.BASELINE.kind == "tc"
    assert not cfg.BASELINE.promote
    assert cfg.BASELINE.packing is PackingPolicy.ATOMIC
    assert cfg.PACKING.packing is PackingPolicy.UNREGULATED
    assert cfg.PROMOTION.promote and cfg.PROMOTION.promote_threshold == 64
    assert cfg.PROMOTION_PACKING.promote
    assert cfg.PROMOTION_PACKING.packing is PackingPolicy.UNREGULATED
    assert cfg.PROMOTION_COST_REG.packing is PackingPolicy.COST_REGULATED


def test_describe_strings():
    assert cfg.ICACHE.describe() == "icache"
    assert cfg.BASELINE.describe() == "tc"
    assert "promo64" in cfg.PROMOTION.describe()
    assert "unregulated" in cfg.PROMOTION_PACKING.describe()
    assert "cost_regulated" in cfg.PROMOTION_COST_REG.describe()


def test_promotion_with_threshold():
    config = cfg.promotion_with_threshold(128)
    assert config.promote and config.promote_threshold == 128
    assert config.packing is PackingPolicy.ATOMIC


def test_promotion_with_packing():
    config = cfg.promotion_with_packing(PackingPolicy.CHUNK4)
    assert config.promote and config.promote_threshold == 64
    assert config.packing is PackingPolicy.CHUNK4


def test_machine_config_describe():
    plain = MachineConfig(frontend=cfg.BASELINE)
    perfect = MachineConfig(frontend=cfg.BASELINE,
                            core=CoreConfig(perfect_disambiguation=True))
    assert plain.describe() == "tc"
    assert perfect.describe() == "tc+perfmem"


def test_configs_are_hashable_and_frozen():
    assert hash(cfg.BASELINE) != hash(cfg.PROMOTION)
    with pytest.raises(Exception):
        cfg.BASELINE.promote = True
    assert {cfg.BASELINE: 1}[cfg.BASELINE] == 1


def test_paper_core_defaults():
    core = CoreConfig()
    assert core.n_fus == 16
    assert core.rs_per_fu == 64
    assert core.fetch_width == core.issue_width == core.retire_width == 16
    assert core.checkpoints_per_cycle == 3
    assert not core.perfect_disambiguation


def test_split_predictor_describe():
    from dataclasses import replace
    config = replace(cfg.PROMOTION, predictor="split")
    assert "split" in config.describe()
