"""Opcode classification: the rules that drive fetch and fill decisions."""

import pytest

from repro.isa.opcodes import Opcode, OpClass, REG3_OPS, REG_IMM_OPS, BRANCH_OPS


ALL_OPS = list(Opcode)
COND_BRANCHES = [Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE]
CONTROL = COND_BRANCHES + [Opcode.JMP, Opcode.CALL, Opcode.RET, Opcode.JR]
SEG_ENDERS = [Opcode.RET, Opcode.JR, Opcode.TRAP, Opcode.HALT]


@pytest.mark.parametrize("op", COND_BRANCHES)
def test_cond_branches_classified(op):
    assert op.is_cond_branch
    assert op.is_control
    assert op.is_direct_control
    assert op.ends_fetch_block


@pytest.mark.parametrize("op", [Opcode.ADD, Opcode.ADDI, Opcode.LD, Opcode.ST, Opcode.NOP])
def test_non_control_ops(op):
    assert not op.is_cond_branch
    assert not op.is_control
    assert not op.ends_fetch_block


@pytest.mark.parametrize("op", CONTROL)
def test_control_ends_fetch_block(op):
    assert op.ends_fetch_block


def test_trap_and_halt_end_fetch_blocks_without_being_control():
    for op in (Opcode.TRAP, Opcode.HALT):
        assert op.ends_fetch_block
        assert not op.is_control


@pytest.mark.parametrize("op", SEG_ENDERS)
def test_segment_enders(op):
    """Returns, indirect jumps, traps and halt finalize trace segments."""
    assert op.ends_trace_segment


@pytest.mark.parametrize("op", [Opcode.BEQ, Opcode.BNE, Opcode.JMP, Opcode.CALL])
def test_non_segment_enders(op):
    """Conditional branches, jumps and calls do NOT finalize segments."""
    assert not op.ends_trace_segment


def test_indirect_classification():
    assert Opcode.JR.is_indirect_control
    assert Opcode.RET.is_indirect_control
    assert not Opcode.JR.is_direct_control
    assert not Opcode.JMP.is_indirect_control


def test_memory_classification():
    assert Opcode.LD.is_load and Opcode.LD.is_mem and not Opcode.LD.is_store
    assert Opcode.ST.is_store and Opcode.ST.is_mem and not Opcode.ST.is_load
    assert not Opcode.ADD.is_mem


def test_serializing():
    assert Opcode.TRAP.is_serializing
    assert not Opcode.CALL.is_serializing


def test_call_is_direct_control_but_not_segment_ender():
    assert Opcode.CALL.is_direct_control
    assert not Opcode.CALL.ends_trace_segment


def test_op_sets_are_disjoint():
    assert not (REG3_OPS & REG_IMM_OPS)
    assert not (REG3_OPS & BRANCH_OPS)
    assert not (REG_IMM_OPS & BRANCH_OPS)


def test_every_opcode_has_an_opclass():
    for op in ALL_OPS:
        assert isinstance(op.opclass, OpClass)
        assert op.mnemonic == op.name


def test_uncond_control_excludes_cond_branches():
    for op in COND_BRANCHES:
        assert not op.is_uncond_control
    for op in (Opcode.JMP, Opcode.CALL, Opcode.RET, Opcode.JR):
        assert op.is_uncond_control
