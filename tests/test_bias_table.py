"""The branch bias table: promotion and demotion state machine."""

import pytest

from repro.trace.bias_table import BranchBiasTable


def test_consecutive_count_tracks_runs():
    table = BranchBiasTable(entries=64, threshold=4)
    for i in range(3):
        entry = table.update(10, True)
        assert entry.count == i + 1 and entry.direction is True
    entry = table.update(10, False)
    assert entry.count == 1 and entry.direction is False


def test_promotion_at_threshold():
    table = BranchBiasTable(entries=64, threshold=4)
    for _ in range(3):
        assert not table.update(10, True).promoted
    entry = table.update(10, True)
    assert entry.promoted and entry.promoted_dir is True
    assert table.promotions == 1
    assert table.is_promoted(10)
    assert table.promoted_direction(10) is True


def test_promotion_not_taken_direction():
    table = BranchBiasTable(entries=64, threshold=3)
    for _ in range(3):
        table.update(10, False)
    assert table.promoted_direction(10) is False


def test_single_opposite_outcome_does_not_demote():
    """The final iteration of a loop must not demote its backedge."""
    table = BranchBiasTable(entries=64, threshold=4)
    for _ in range(5):
        table.update(10, True)
    table.update(10, False)  # one fault
    assert table.is_promoted(10)
    assert table.demotions == 0


def test_two_consecutive_opposites_demote():
    table = BranchBiasTable(entries=64, threshold=4)
    for _ in range(5):
        table.update(10, True)
    table.update(10, False)
    table.update(10, False)
    assert not table.is_promoted(10)
    assert table.demotions == 1


def test_opposite_then_majority_then_opposite_does_not_demote():
    table = BranchBiasTable(entries=64, threshold=4)
    for _ in range(5):
        table.update(10, True)
    table.update(10, False)
    table.update(10, True)   # back to the promoted direction
    table.update(10, False)  # an isolated fault again
    assert table.is_promoted(10)


def test_repromotion_in_the_other_direction():
    table = BranchBiasTable(entries=8, threshold=3)
    for _ in range(3):
        table.update(10, True)
    assert table.promoted_direction(10) is True
    for _ in range(3):
        table.update(10, False)
    assert table.promoted_direction(10) is False
    assert table.demotions == 1 and table.promotions == 2


def test_bias_table_miss_loses_promotion():
    """Eviction by a conflicting branch acts as a demotion."""
    table = BranchBiasTable(entries=8, threshold=2)
    table.update(3, True)
    table.update(3, True)
    assert table.is_promoted(3)
    table.update(11, True)  # same slot (11 % 8 == 3), different tag: evicts
    assert table.lookup(3) is None
    assert not table.is_promoted(3)


def test_tagged_lookup():
    table = BranchBiasTable(entries=8)
    table.update(3, True)
    assert table.lookup(3) is not None
    assert table.lookup(11) is None  # same slot, wrong tag


def test_counter_cap():
    table = BranchBiasTable(entries=8, threshold=4, counter_bits=3)
    for _ in range(100):
        entry = table.update(1, True)
    assert entry.count == 7  # saturates at 2^3 - 1


def test_threshold_wider_than_counter_rejected():
    with pytest.raises(ValueError):
        BranchBiasTable(entries=8, threshold=4096, counter_bits=10)


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        BranchBiasTable(entries=0)
    with pytest.raises(ValueError):
        BranchBiasTable(threshold=0)


def test_paper_default_sizing():
    table = BranchBiasTable()
    assert table.entries == 8192
    assert table.threshold == 64
