"""Program container: validation, block leaders, listing."""

import pytest

from repro.isa import assemble, Program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


def test_dense_address_check():
    good = [Instruction(addr=0, op=Opcode.NOP), Instruction(addr=1, op=Opcode.HALT)]
    Program(instructions=good)
    bad = [Instruction(addr=0, op=Opcode.NOP), Instruction(addr=5, op=Opcode.HALT)]
    with pytest.raises(ValueError, match="dense"):
        Program(instructions=bad)


def test_entry_bounds_check():
    insts = [Instruction(addr=0, op=Opcode.HALT)]
    with pytest.raises(ValueError):
        Program(instructions=insts, entry=3)


def test_fetch_in_and_out_of_range(loop_program):
    assert loop_program.fetch(0) is loop_program.instructions[0]
    assert loop_program.fetch(len(loop_program)) is None
    assert loop_program.fetch(-1) is None


def test_static_block_starts(branchy_program):
    leaders = branchy_program.static_block_starts()
    # Entry, branch targets and fall-throughs are all leaders.
    assert branchy_program.entry in leaders
    assert branchy_program.symbols["loop"] in leaders
    assert branchy_program.symbols["skip"] in leaders


def test_validate_targets_rejects_out_of_range():
    insts = [Instruction(addr=0, op=Opcode.JMP, target=17)]
    program = Program(instructions=insts)
    with pytest.raises(ValueError, match="targets"):
        program.validate_targets()


def test_static_cond_branches(branchy_program):
    branches = branchy_program.static_cond_branches()
    assert len(branches) == 2  # BEQ skip + BNE loop
    assert all(b.op.is_cond_branch for b in branches)


def test_listing_contains_labels(loop_program):
    listing = loop_program.listing()
    assert "main:" in listing and "loop:" in listing
    assert "HALT" in listing


def test_listing_slice(loop_program):
    listing = loop_program.listing(start=0, count=2)
    assert listing.count("\n") <= 3
