"""The experiment service: protocol, coalescing, admission, drain, and
crash-safe shared-cache multi-tenancy.

The acceptance bar mirrors the fault suite's: everything the service
returns must be byte-identical to a clean serial computation — under
duplicate storms, client disconnects, overload shedding, SIGTERM drain
plus restart, corrupted cache entries and concurrent multi-process
writers.  Overload must always produce an explicit rejection, never a
hang or a silent drop.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.config import BASELINE, PROMOTION, PROMOTION_PACKING
from repro.experiments import checkpoint, diskcache, env, runner, scheduler
from repro.experiments.serialize import frontend_result_to_dict
from repro.experiments.scheduler import GridPoint
from repro.service import breaker as breaker_module
from repro.service import protocol
from repro.service.breaker import CircuitBreaker
from repro.service.client import (ServiceClient, ServiceError,
                                  ServiceOverloaded, ServicePointError,
                                  submit_with_retry)
from repro.service.server import ExperimentService, ServiceThread

N = 6_000

REPO = Path(__file__).parent.parent

_KNOBS = ("REPRO_DISK_CACHE", "REPRO_TRACE_FILES", "REPRO_FAULTS",
          "REPRO_RETRIES", "REPRO_POINT_TIMEOUT", "REPRO_KEEP_GOING",
          "REPRO_RESUME", "REPRO_CHECKPOINTS", "REPRO_JOBS",
          "REPRO_VALIDATE", "REPRO_CACHE_MAX_MB", "REPRO_ADMIT_MAX",
          "REPRO_CLIENT_BACKLOG", "REPRO_DRAIN_GRACE",
          "REPRO_SERVICE_ADDR", "REPRO_LEASE_TTL", "REPRO_HEARTBEAT",
          "REPRO_FLEET_MIN")


@pytest.fixture(autouse=True)
def fresh_state(tmp_path, monkeypatch):
    """Every test: empty cache dir, no knobs, fast backoff."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for knob in _KNOBS:
        monkeypatch.delenv(knob, raising=False)
    monkeypatch.setenv("REPRO_BACKOFF", "0.01")
    runner.clear_caches()
    yield
    runner.clear_caches()


def _point(config=BASELINE, benchmark="compress", n=N):
    return GridPoint("frontend", benchmark, config, n)


def _result_json(result):
    return json.dumps(frontend_result_to_dict(result), sort_keys=True)


def _service(**kwargs):
    kwargs.setdefault("host", "127.0.0.1")
    kwargs.setdefault("port", 0)
    kwargs.setdefault("jobs", 1)  # inline in-thread: monkeypatchable
    thread = ServiceThread(**kwargs)
    thread.start()
    return thread


# --- protocol ----------------------------------------------------------------


def test_protocol_message_round_trip():
    message = {"id": 7, "op": "submit", "points": [1, 2]}
    assert protocol.decode(protocol.encode(message)) == message


def test_protocol_point_round_trip():
    for point in (_point(), GridPoint("frontend", "gcc", PROMOTION, 9_000),
                  _point(PROMOTION_PACKING)):
        rebuilt = protocol.point_from_dict(protocol.point_to_dict(point))
        assert rebuilt == point
        assert scheduler.point_key(rebuilt) == scheduler.point_key(point)


def test_protocol_rejects_malformed():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"not json\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"[1, 2]\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.point_from_dict({"kind": "nonsense"})
    with pytest.raises(protocol.ProtocolError):
        protocol.point_from_dict({"kind": "frontend", "benchmark": "",
                                  "config": {}})
    good = protocol.point_to_dict(_point())
    with pytest.raises(protocol.ProtocolError):
        protocol.point_from_dict({**good, "n": -5})
    with pytest.raises(protocol.ProtocolError):
        protocol.point_from_dict({**good, "config": {"type": "alien"}})
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_deadline("soon")
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_deadline(-3)
    assert protocol.parse_deadline(None) is None
    assert protocol.parse_deadline(2) == 2.0


def test_protocol_line_limit():
    with pytest.raises(protocol.ProtocolError):
        protocol.encode({"blob": "x" * protocol.MAX_LINE})
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"x" * (protocol.MAX_LINE + 1))


def test_get_hostport(monkeypatch):
    default = ("127.0.0.1", 1234)
    assert env.get_hostport("REPRO_SERVICE_ADDR", default) == default
    monkeypatch.setenv("REPRO_SERVICE_ADDR", "0.0.0.0:9000")
    assert env.get_hostport("REPRO_SERVICE_ADDR", default) == \
        ("0.0.0.0", 9000)
    monkeypatch.setenv("REPRO_SERVICE_ADDR", ":9100")
    assert env.get_hostport("REPRO_SERVICE_ADDR", default) == \
        ("127.0.0.1", 9100)
    monkeypatch.setenv("REPRO_SERVICE_ADDR", "9200")
    assert env.get_hostport("REPRO_SERVICE_ADDR", default) == \
        ("127.0.0.1", 9200)
    monkeypatch.setenv("REPRO_SERVICE_ADDR", "host:notaport")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVICE_ADDR"):
        assert env.get_hostport("REPRO_SERVICE_ADDR", default) == default


# --- circuit breaker ---------------------------------------------------------


def test_breaker_trips_after_threshold():
    clock = [0.0]
    b = CircuitBreaker(threshold=3, cooldown=10.0, clock=lambda: clock[0])
    assert b.state == breaker_module.CLOSED
    for _ in range(2):
        b.record_break()
    assert b.state == breaker_module.CLOSED and b.allow_pool()
    b.record_break()
    assert b.state == breaker_module.OPEN and not b.allow_pool()


def test_breaker_success_resets_strikes():
    b = CircuitBreaker(threshold=2, cooldown=10.0)
    b.record_break()
    b.record_success()  # strikes count *consecutive* breaks
    b.record_break()
    assert b.state == breaker_module.CLOSED


def test_breaker_half_open_probe():
    clock = [0.0]
    b = CircuitBreaker(threshold=1, cooldown=5.0, clock=lambda: clock[0])
    b.record_break()
    assert not b.allow_pool()
    clock[0] = 6.0  # cooldown elapsed: probe allowed
    assert b.state == breaker_module.HALF_OPEN
    assert b.allow_pool()
    b.record_success()
    assert b.state == breaker_module.CLOSED
    # Failed probe path: re-open and restart the cooldown clock.
    b.record_break()
    clock[0] = 12.0
    assert b.allow_pool()
    b.record_break()
    assert not b.allow_pool()
    assert b.stats()["trips"] == 3
    clock[0] = 18.0
    assert b.allow_pool()


# --- file locks, quarantine, quota (shared-cache multi-tenancy) --------------


def test_filelock_mutual_exclusion_and_timeout():
    with diskcache.FileLock("t", timeout=5.0):
        contender = diskcache.FileLock("t", timeout=0.2, poll=0.01)
        with pytest.raises(diskcache.LockTimeout):
            contender.acquire()
    # Released: immediately acquirable again.
    with diskcache.FileLock("t", timeout=1.0):
        pass


def test_filelock_breaks_dead_owner():
    lock_path = diskcache.lock_dir() / "t.lock"
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    lock_path.write_text("999999999")  # a pid that cannot exist
    start = time.monotonic()
    with diskcache.FileLock("t", timeout=5.0, poll=0.01):
        pass
    assert time.monotonic() - start < 2.0  # broken, not waited out


def test_filelock_breaks_unparseable_stale_file(monkeypatch):
    lock_path = diskcache.lock_dir() / "t.lock"
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    lock_path.write_text("garbage")
    old = time.time() - 2 * diskcache.STALE_LOCK_SECONDS
    os.utime(lock_path, (old, old))
    with diskcache.FileLock("t", timeout=5.0, poll=0.01):
        pass


def test_filelock_lockless_degradation(tmp_path, monkeypatch):
    blocked = tmp_path / "nope"
    blocked.write_text("a file, not a directory")
    lock = diskcache.FileLock("t", directory=blocked / "locks", timeout=1.0)
    with lock:  # acquire degrades instead of failing the experiment
        assert lock._lockless


def test_corrupt_cache_entry_is_quarantined():
    key = "ab" * 32
    diskcache.store(key, "frontend", {"x": 1})
    assert diskcache.load(key) == {"x": 1}
    diskcache.entry_path(key).write_text("{ torn")
    assert diskcache.load(key) is None
    assert not diskcache.entry_path(key).exists()
    quarantined = list(diskcache.quarantine_dir().glob("*.quarantined"))
    assert len(quarantined) == 1
    assert "torn" in quarantined[0].read_text()
    assert diskcache.cache_stats()["quarantined"] == 1
    # Non-UTF-8 garbage (what the corrupt-cache fault stamps) must take
    # the same quarantine path, not raise out of the loader.
    diskcache.entry_path(key).write_bytes(b"\xde\xad\xbe\xef{corrupt")
    assert diskcache.load(key) is None
    assert diskcache.cache_stats()["quarantined"] == 2


def test_quota_evicts_lru_but_never_pinned(monkeypatch):
    payload = {"blob": "x" * 4096}
    keys = [format(i, "x") * 32 for i in range(1, 6)]
    for key in keys:
        diskcache.store(key, "frontend", payload)
    sizes = diskcache.cache_stats()
    per_entry = sizes["bytes"] // sizes["entries"]
    # Room for roughly two entries; pin the oldest so LRU must skip it.
    monkeypatch.setenv("REPRO_CACHE_MAX_MB",
                       str(2.5 * per_entry / (1024 * 1024)))
    now = time.time()
    for age, key in enumerate(keys):  # keys[0] newest .. keys[-1] oldest
        os.utime(diskcache.entry_path(key), (now - age, now - age))
    diskcache.pin(keys[-1])  # oldest mtime, but pinned
    evicted = diskcache.enforce_quota()
    assert evicted >= 1
    assert diskcache.entry_path(keys[-1]).exists()  # pinned survived
    assert diskcache.entry_path(keys[0]).exists()   # most recent survived
    assert not diskcache.entry_path(keys[-2]).exists()  # true LRU went
    diskcache.unpin(keys[-1])
    stats = diskcache.cache_stats()
    assert stats["pinned"] == 0
    assert stats["quota_bytes"] is not None


def test_store_touch_on_hit_refreshes_lru(monkeypatch):
    key_old, key_new = "1a" * 32, "2b" * 32
    diskcache.store(key_old, "frontend", {"v": 1})
    diskcache.store(key_new, "frontend", {"v": 2})
    past = time.time() - 1000
    os.utime(diskcache.entry_path(key_old), (past, past))
    os.utime(diskcache.entry_path(key_new), (past + 1, past + 1))
    assert diskcache.load(key_old) == {"v": 1}  # hit refreshes mtime
    per_entry = diskcache.cache_stats()["bytes"] // 2
    monkeypatch.setenv("REPRO_CACHE_MAX_MB",
                       str(1.5 * per_entry / (1024 * 1024)))
    diskcache.enforce_quota()
    assert diskcache.entry_path(key_old).exists()
    assert not diskcache.entry_path(key_new).exists()


def test_dead_pid_pins_are_ignored():
    key = "cd" * 32
    diskcache.store(key, "frontend", {"x": 1})
    pin_dir = diskcache.pin_dir()
    pin_dir.mkdir(parents=True, exist_ok=True)
    # Legacy one-file-per-key pin (pid in the content) and the current
    # per-(key, pid) format must both be recognised and swept when dead.
    legacy = pin_dir / f"{key}.pin"
    legacy.write_text("999999999")
    modern = pin_dir / f"{key}.999999998.pin"
    modern.write_text("999999998")
    assert diskcache.pinned_keys() == set()
    assert not legacy.exists()  # dead pins swept
    assert not modern.exists()


def test_pins_are_per_process():
    """Two services sharing a cache dir pin the same key: one process
    dropping its pin must not strip the other's still-in-flight
    protection (pid 1 stands in for the live sibling process)."""
    key = "ab" * 32
    pin_dir = diskcache.pin_dir()
    pin_dir.mkdir(parents=True, exist_ok=True)
    sibling = pin_dir / f"{key}.1.pin"
    sibling.write_text("1")
    diskcache.pin(key)
    assert key in diskcache.pinned_keys()
    diskcache.unpin(key)  # our flight finished; the sibling's has not
    assert key in diskcache.pinned_keys()
    assert sibling.exists()
    sibling.unlink()
    assert diskcache.pinned_keys() == set()


def test_cache_stats_index_self_heals():
    key = "ef" * 32
    diskcache.store(key, "frontend", {"x": 1})
    (diskcache.cache_dir() / "index.json").write_text("garbage")
    stats = diskcache.cache_stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0


def test_clear_caches_disk_leaves_no_orphans():
    """The satellite fix: a full disk wipe must not leave warn-once
    markers, journals, empty bookkeeping dirs, pins or lock files."""
    from repro.experiments import warnonce

    runner.frontend_result("compress", BASELINE, N)
    with pytest.warns(RuntimeWarning, match="marker"):
        warnonce.warn_once("svc-test-marker", "marker", shared=True)
    checkpoint.Journal(["a" * 64]).record("a" * 64, "frontend", {"v": 1})
    diskcache.pin("ab" * 32)
    diskcache.entry_path("ab" * 32).write_text("{ torn")
    diskcache.load("ab" * 32)  # quarantine it
    runner.clear_caches(disk=True)
    root = diskcache.cache_dir()
    leftovers = sorted(p.relative_to(root).as_posix()
                       for p in root.rglob("*") if not p.is_dir())
    assert leftovers == []
    for name in ("warned", "checkpoints", "divergences", "traces",
                 "locks", "pins", "quarantine"):
        assert not (root / name).exists(), name


# --- service end-to-end ------------------------------------------------------


def test_submit_matches_direct_computation():
    expected = _result_json(runner.frontend_result("compress", BASELINE, N))
    runner.clear_caches(disk=True)  # make the service compute it fresh
    service = _service()
    try:
        with ServiceClient(*service.start()) as client:
            assert client.ping()["type"] == "pong"
            results = client.submit([_point()])
            assert _result_json(results[0]) == expected
            # Second submission: served from cache, still identical.
            results2 = client.submit([_point()])
            assert _result_json(results2[0]) == expected
            status = client.status()
            assert status["counters"]["computed_ok"] == 1
            assert status["counters"]["cache_hits"] >= 1
            # Timing-memo accounting is part of the status surface.
            memo = status["machine_memo"]
            assert {"tables", "entries", "hits", "misses"} <= set(memo)
    finally:
        service.stop()


def test_submit_mixed_grid_and_journal_resume():
    service = _service()
    try:
        host, port = service.start()
        points = [_point(BASELINE), _point(PROMOTION_PACKING)]
        with ServiceClient(host, port) as client:
            first = client.submit(points)
            assert len(first) == 2
        # A fresh in-process memo but a warm disk cache: resubmitting is
        # pure cache hits, byte-identical.
        memo_results = [_result_json(r) for r in first]
        runner.clear_caches(disk=False)
        with ServiceClient(host, port) as client:
            again = client.submit(points)
            assert [_result_json(r) for r in again] == memo_results
    finally:
        service.stop()


def test_duplicate_storm_coalesces_to_one_computation(monkeypatch):
    """1000 duplicate submissions of one point -> at most 2 computations
    (the acceptance bound; the design target is exactly 1)."""
    computed = []
    gate = threading.Event()
    real = scheduler._run_point

    def gated(point, engine=None):
        computed.append(point)
        gate.wait(timeout=60)
        return real(point, engine)

    monkeypatch.setattr(scheduler, "_run_point", gated)
    service = _service(client_backlog=2000, admit_max=64)
    try:
        with ServiceClient(*service.start(), timeout=120) as client:
            ids = [client.submit_nowait([_point()]) for _ in range(1000)]
            gate.set()
            raws = [client.result(i, raw=True) for i in ids]
            payloads = {json.dumps(r[0]["payload"], sort_keys=True)
                        for r in raws}
            assert len(payloads) == 1
            assert all(r[0]["status"] == "ok" for r in raws)
            status = client.status()
            assert status["coalesce"]["created_total"] <= 2
            # Every duplicate either attached to the in-flight
            # computation or (after it finished) hit the warm cache.
            counters = status["counters"]
            served_free = (status["coalesce"]["coalesced_total"]
                           + counters["cache_hits"]
                           + counters["journal_hits"])
            assert served_free >= 998
    finally:
        gate.set()
        service.stop()
    assert len(computed) <= 2


def test_overload_produces_explicit_rejection(monkeypatch):
    gate = threading.Event()
    real = scheduler._run_point

    def gated(point, engine=None):
        gate.wait(timeout=60)
        return real(point, engine)

    monkeypatch.setattr(scheduler, "_run_point", gated)
    service = _service(admit_max=1)
    try:
        with ServiceClient(*service.start(), timeout=120) as client:
            blocker = client.submit_nowait([_point(BASELINE)])
            deadline = time.monotonic() + 30
            while client.status()["in_flight"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            with pytest.raises(ServiceOverloaded) as caught:
                client.submit([_point(PROMOTION_PACKING)])
            assert caught.value.reason == "overloaded"
            assert caught.value.retry_after > 0
            # Duplicates of the in-flight point are free: they attach.
            dup = client.submit_nowait([_point(BASELINE)])
            gate.set()
            assert client.result(blocker)[0] is not None
            assert client.result(dup)[0] is not None
            # With capacity back, the rejected point goes through on
            # retry-with-backoff.
            results = submit_with_retry(client,
                                        [_point(PROMOTION_PACKING)],
                                        base=0.01)
            assert results[0] is not None
    finally:
        gate.set()
        service.stop()


def test_client_backlog_rejection(monkeypatch):
    gate = threading.Event()
    real = scheduler._run_point

    def gated(point, engine=None):
        gate.wait(timeout=60)
        return real(point, engine)

    monkeypatch.setattr(scheduler, "_run_point", gated)
    service = _service(client_backlog=1, admit_max=64)
    try:
        with ServiceClient(*service.start(), timeout=120) as client:
            first = client.submit_nowait([_point(BASELINE)])
            deadline = time.monotonic() + 30
            while client.status()["in_flight"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            with pytest.raises(ServiceOverloaded) as caught:
                client.submit([_point(PROMOTION_PACKING)])
            assert caught.value.reason == "client-backlog"
            gate.set()
            client.result(first)
    finally:
        gate.set()
        service.stop()


def test_admission_reserves_window_before_attach():
    """The overload check and its reservation are one atomic step:
    concurrent submissions whose preparation is still awaiting journal
    and cache IO must not all be admitted against the same stale
    in-flight count."""
    from types import SimpleNamespace

    service = ExperimentService(host="127.0.0.1", port=0, jobs=1,
                                admit_max=1)
    conn = SimpleNamespace(active=0)
    key_a, key_b = "aa" * 32, "bb" * 32
    rejection, reserved = service._admission_answer(conn, [key_a], {})
    assert rejection is None and reserved == [key_a]
    # The window is exhausted *before* key_a ever reaches the table.
    rejection, extra = service._admission_answer(conn, [key_b], {})
    assert extra == []
    assert rejection is not None and rejection[0] == "overloaded"
    # Concurrent duplicates of the reserved key are free: they will
    # coalesce onto its one computation, like duplicates of an
    # in-flight key.
    rejection, extra = service._admission_answer(conn, [key_a], {})
    assert rejection is None and extra == []
    # Journaled points stay free even while the window is full: a
    # resubmission of an interrupted grid must never be rejected for
    # work it already finished.
    rejection, extra = service._admission_answer(
        conn, [key_b], {key_b: ("frontend", {})})
    assert rejection is None and extra == []
    # Releasing the reservation (preparation finished) reopens it.
    service._release_reservations(reserved)
    rejection, reserved = service._admission_answer(conn, [key_b], {})
    assert rejection is None and reserved == [key_b]


def test_preparation_failure_never_strands_coalesce_entries(monkeypatch):
    """A failure between attaching a coalesce entry and spawning its
    drive task (here: the cache probe for a later point of the same
    submission blowing up) must tear the taskless entry down — a
    stranded entry would hang every later duplicate until drain and
    leak its disk-cache pin."""
    real = ExperimentService._cached_payload
    calls = []

    def exploding(self, point):
        calls.append(point)
        if len(calls) == 2:
            raise RuntimeError("cache probe exploded")
        return real(self, point)

    monkeypatch.setattr(ExperimentService, "_cached_payload", exploding)
    service = _service()
    try:
        with ServiceClient(*service.start(), timeout=60) as client:
            with pytest.raises(ServiceError, match="cache probe exploded"):
                client.submit([_point(BASELINE), _point(PROMOTION_PACKING)])
            status = client.status()
            assert status["in_flight"] == 0
            assert status["admission_reserved"] == 0
            assert diskcache.pinned_keys() == set()
            # The key is not wedged on a dead entry: resubmitting it
            # computes normally (the third probe delegates to the real
            # cache lookup).
            results = client.submit([_point(BASELINE)])
            assert results[0] is not None
            assert client.status()["counters"]["computed_ok"] == 1
    finally:
        service.stop()


def test_disconnect_does_not_cancel_computation(monkeypatch):
    gate = threading.Event()
    real = scheduler._run_point

    def gated(point, engine=None):
        gate.wait(timeout=60)
        return real(point, engine)

    monkeypatch.setattr(scheduler, "_run_point", gated)
    service = _service()
    try:
        host, port = service.start()
        client = ServiceClient(host, port, timeout=120)
        client.submit_nowait([_point()])
        deadline = time.monotonic() + 30
        with ServiceClient(host, port) as probe:
            while probe.status()["in_flight"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            client.close()  # walk away mid-computation
            gate.set()
            while probe.status()["counters"]["computed_ok"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # The orphaned computation finished, warmed the shared
            # cache, and tore its coalescing entry down.
            assert probe.status()["in_flight"] == 0
            key = scheduler.point_key(_point().resolved())
            assert diskcache.entry_path(key).exists()
    finally:
        gate.set()
        service.stop()


def test_drain_answers_inflight_with_retryable_error(monkeypatch):
    gate = threading.Event()

    def stuck(point, engine=None):
        gate.wait(timeout=60)
        raise OSError("interrupted by drain")

    monkeypatch.setattr(scheduler, "_run_point", stuck)
    service = _service(drain_grace=0.2)
    try:
        with ServiceClient(*service.start(), timeout=120) as client:
            pending = client.submit_nowait([_point()])
            deadline = time.monotonic() + 30
            while client.status()["in_flight"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert client.drain()["type"] == "draining"
            rows = client.result(pending, raw=True)
            assert rows[0]["status"] == "error"
            assert rows[0]["retryable"] is True
    finally:
        gate.set()
        service.stop()


def test_rejects_while_draining():
    service = _service(drain_grace=0.1)
    try:
        host, port = service.start()
        with ServiceClient(host, port) as client:
            client.drain()
            with pytest.raises((ServiceOverloaded, ServiceError)):
                client.submit([_point()])
    finally:
        service.stop()


def test_deterministic_failure_reports_not_hangs(monkeypatch):
    def broken(point, engine=None):
        raise ValueError("simulated bug")

    monkeypatch.setattr(scheduler, "_run_point", broken)
    service = _service()
    try:
        with ServiceClient(*service.start(), timeout=60) as client:
            with pytest.raises(ServicePointError) as caught:
                client.submit([_point()])
            assert caught.value.retryable is False
            assert "simulated bug" in caught.value.error
    finally:
        service.stop()


def test_deadline_bounds_the_wait(monkeypatch):
    gate = threading.Event()
    real = scheduler._run_point

    def gated(point, engine=None):
        gate.wait(timeout=60)
        return real(point, engine)

    monkeypatch.setattr(scheduler, "_run_point", gated)
    service = _service()
    try:
        with ServiceClient(*service.start(), timeout=60) as client:
            start = time.monotonic()
            rows = client.submit([_point()], deadline=0.5, raw=True)
            elapsed = time.monotonic() - start
            assert rows[0]["status"] == "error"
            assert rows[0]["retryable"] is True
            assert "deadline" in rows[0]["error"]
            assert elapsed < 30
    finally:
        gate.set()
        service.stop()


def test_deadline_point_timeout_math():
    points = [_point(BASELINE), _point(PROMOTION_PACKING)]
    base = scheduler.deadline_point_timeout(points, 10.0)
    scale = sum(max(1.0, scheduler.estimated_cost(p) / 100_000)
                for p in points)
    assert base == pytest.approx(10.0 / scale)
    assert scheduler.deadline_point_timeout(points, None) is None
    assert scheduler.deadline_point_timeout([], 10.0) is None
    assert scheduler.deadline_point_timeout(points, -1.0) is None


def test_unknown_op_and_bad_submit_answer_errors():
    service = _service()
    try:
        host, port = service.start()
        with socket.create_connection((host, port), timeout=30) as sock:
            handle = sock.makefile("rwb")
            handle.write(protocol.encode({"id": 1, "op": "warp"}))
            handle.write(protocol.encode({"id": 2, "op": "submit",
                                          "points": []}))
            handle.write(b"garbage that is not json\n")
            handle.flush()
            replies = [protocol.decode(handle.readline()) for _ in range(3)]
        assert all(reply["type"] == "error" for reply in replies)
        # Submit errors are answered from a task, so ordering is loose.
        assert {reply["id"] for reply in replies} == {1, 2, None}
    finally:
        service.stop()


# --- multi-process shared cache ----------------------------------------------

_HAMMER = """
import json, os, sys
from repro.experiments import diskcache

seed = int(sys.argv[1])
shared_key = "ab" * 32
payload = {{"blob": "x" * 2048, "tag": "shared"}}
for i in range(120):
    diskcache.store(shared_key, "frontend", payload)
    got = diskcache.load(shared_key)
    assert got is None or got == payload, got
    churn_key = format(seed * 1000 + i, "x").rjust(64, "0")
    diskcache.store(churn_key, "frontend", {{"i": i, "seed": seed}})
print("OK")
"""


def test_concurrent_writers_never_tear_entries():
    """N processes hammer the same key (plus quota churn): every read is
    byte-identical or a clean miss, and no torn files survive."""
    child_env = dict(os.environ)
    child_env["PYTHONPATH"] = str(REPO / "src")
    child_env["REPRO_CACHE_MAX_MB"] = "0.2"  # force eviction churn
    children = [
        subprocess.Popen([sys.executable, "-c", _HAMMER.format(),
                          str(seed)],
                         env=child_env, cwd=REPO,
                         stdout=subprocess.PIPE,
                         stderr=subprocess.PIPE)
        for seed in range(4)
    ]
    for child in children:
        out, err = child.communicate(timeout=180)
        assert child.returncode == 0, err.decode()
        assert out.decode().strip() == "OK"
    # No torn temp files; whatever entries survived all parse cleanly.
    assert list(diskcache.cache_dir().glob("*.tmp")) == []
    for path in diskcache.cache_dir().glob("*.json"):
        if path.name == "index.json":
            continue
        json.loads(path.read_text())
    got = diskcache.load("ab" * 32)
    assert got is None or got == {"blob": "x" * 2048, "tag": "shared"}


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals")
def test_stale_lock_takeover_after_sigkill():
    """SIGKILL a writer holding the index lock mid-store: the next
    contender detects the dead pid and takes the lock over."""
    script = (
        "import time\n"
        "from repro.experiments import diskcache\n"
        "lock = diskcache.FileLock('cache-index', timeout=5)\n"
        "lock.acquire()\n"
        "print('held', flush=True)\n"
        "time.sleep(600)\n"
    )
    child_env = dict(os.environ)
    child_env["PYTHONPATH"] = str(REPO / "src")
    child = subprocess.Popen([sys.executable, "-c", script], env=child_env,
                             cwd=REPO, stdout=subprocess.PIPE,
                             stderr=subprocess.DEVNULL)
    try:
        assert child.stdout.readline().strip() == b"held"
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
        start = time.monotonic()
        with diskcache.FileLock("cache-index", timeout=10.0, poll=0.01):
            pass
        assert time.monotonic() - start < 5.0
        # And the lock still works end-to-end: a store accounts cleanly.
        diskcache.store("cd" * 32, "frontend", {"x": 1})
        assert diskcache.cache_stats()["entries"] >= 1
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)


# --- SIGTERM drain + restart resume (chaos) ----------------------------------

_SERVE = """
import sys
from repro.service import serve
serve("127.0.0.1", int(sys.argv[1]), jobs=2)
"""


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals")
def test_sigterm_drain_and_restart_resume():
    """SIGTERM a real service process mid-computation: the drain answers
    the client (journaled points ok, stragglers retryable), and a
    restarted service serves the full grid byte-identical to a clean
    serial run — recomputing only what was never journaled or cached."""
    port = _free_port()
    child_env = dict(os.environ)
    child_env["PYTHONPATH"] = str(REPO / "src")
    child_env["REPRO_DRAIN_GRACE"] = "1.0"
    # Ordinal 1 (the second computation the service starts) hangs; the
    # drain must not wait out the 600s.
    child_env["REPRO_FAULTS"] = "hang:p1:600"

    def spawn():
        return subprocess.Popen([sys.executable, "-c", _SERVE, str(port)],
                                env=child_env, cwd=REPO,
                                start_new_session=True,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)

    def wait_ready():
        deadline = time.monotonic() + 60
        while True:
            try:
                with ServiceClient("127.0.0.1", port, timeout=5) as probe:
                    probe.ping()
                return
            except (OSError, ServiceError):
                assert time.monotonic() < deadline
                time.sleep(0.1)

    points = [_point(BASELINE), _point(PROMOTION_PACKING)]
    child = spawn()
    try:
        wait_ready()
        with ServiceClient("127.0.0.1", port, timeout=120) as client:
            pending = client.submit_nowait(points)
            deadline = time.monotonic() + 60
            while client.status()["counters"]["computed_ok"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            os.kill(child.pid, signal.SIGTERM)
            rows = client.result(pending, raw=True)
        statuses = sorted(row["status"] for row in rows)
        assert statuses == ["error", "ok"]
        for row in rows:
            if row["status"] == "error":
                assert row["retryable"] is True
        child.wait(timeout=60)
    finally:
        try:
            os.killpg(child.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        child.wait(timeout=30)

    # Restart without faults: the journaled/cached point is not
    # recomputed, the straggler is, and everything matches a clean
    # serial computation in this process.
    child_env.pop("REPRO_FAULTS")
    child = spawn()
    try:
        wait_ready()
        with ServiceClient("127.0.0.1", port, timeout=120) as client:
            results = client.submit(points)
            status = client.status()
            assert status["counters"]["computed_ok"] <= 1
        child.wait  # (drained below)
    finally:
        try:
            os.killpg(child.pid, signal.SIGTERM)
        except ProcessLookupError:
            pass
        child.wait(timeout=60)

    runner.clear_caches(disk=True)
    clean = [runner.frontend_result(p.benchmark, p.config, p.n)
             for p in points]
    assert [_result_json(r) for r in results] == \
        [_result_json(r) for r in clean]


# --- worker-fleet heartbeat failover (chaos) ---------------------------------


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals")
def test_worker_sigkill_failover_recomputes_elsewhere():
    """SIGKILL a fleet worker mid-point: the dropped connection revokes
    its lease, the point requeues onto the surviving worker, and the
    answer is byte-identical to a clean in-process computation."""
    from repro.service.server import ServiceThread

    service = ServiceThread(host="127.0.0.1", port=0, jobs=1,
                            lease_ttl=5.0, heartbeat=0.25)
    service.start()
    host, port = service.service.host, service.service.port

    def spawn_worker(name, extra_env=None):
        child_env = dict(os.environ)
        child_env["PYTHONPATH"] = str(REPO / "src")
        child_env.update(extra_env or {})
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", f"{host}:{port}",
             "--name", name, "--quiet"],
            env=child_env, cwd=REPO, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def fleet_status(client):
        return client.status()["fleet"]

    def wait_until(predicate, timeout=60.0):
        deadline = time.monotonic() + timeout
        while not predicate():
            assert time.monotonic() < deadline, "timed out waiting"
            time.sleep(0.05)

    point = _point()
    # Worker A hangs on its first computation (armed worker, ordinal 0);
    # worker B runs clean.
    victim = spawn_worker("w-victim",
                          {"REPRO_FAULTS": "hang:p0:600"})
    survivor = None
    try:
        with ServiceClient(host, port, timeout=120) as client:
            wait_until(lambda: len(fleet_status(client)["workers"]) == 1)
            pending = client.submit_nowait([point])
            # The hung point must be leased to the victim before the axe.
            wait_until(lambda: any(
                lease["worker"] == "w-victim"
                for lease in fleet_status(client)["leases"]))
            survivor = spawn_worker("w-survivor")
            wait_until(lambda: len(fleet_status(client)["workers"]) == 2)
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
            results = client.result(pending)
            fleet = fleet_status(client)
        assert fleet["requeued_total"] >= 1
        by_worker = {w["worker"]: w for w in fleet["workers"]}
        assert by_worker["w-survivor"]["completed"] == 1
        assert len(results) == 1
    finally:
        for child in (victim, survivor):
            if child is None:
                continue
            try:
                os.killpg(child.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            child.wait(timeout=30)
        service.stop()

    runner.clear_caches(disk=True)
    clean = runner.frontend_result(point.benchmark, point.config, point.n)
    assert _result_json(results[0]) == _result_json(clean)
