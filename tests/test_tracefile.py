"""Binary oracle trace files: round-trip fidelity and failure recovery."""

import json
import struct

import pytest

from repro.config import BASELINE, PROMOTION_PACKING, MachineConfig
from repro.experiments import runner, tracefile
from repro.experiments.scheduler import GridPoint, run_grid
from repro.experiments.serialize import machine_result_to_dict
from repro.frontend.simulator import compute_oracle

N = 6_000


@pytest.fixture(autouse=True)
def fresh_cache(tmp_path, monkeypatch):
    """Each test gets an empty cache dir (results and trace files)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_FILES", raising=False)
    # Keep the grid test's machine warmups (which run at the benchmark's
    # default length) short.
    monkeypatch.setenv("REPRO_SCALE", "0.1")
    runner.clear_caches()
    yield
    runner.clear_caches()


# --- round trip --------------------------------------------------------------


def test_round_trip_identical_stream():
    program = runner.get_program("compress")
    oracle = compute_oracle(program, N)
    assert tracefile.store_oracle("compress", N, oracle) is not None

    loaded = tracefile.load_oracle("compress", N, program)
    assert loaded is not None
    assert len(loaded) == len(oracle)
    for (inst_a, taken_a, next_a), (inst_b, taken_b, next_b) in zip(oracle, loaded):
        assert inst_a is inst_b  # same Instruction object from the code image
        assert taken_a == taken_b and type(taken_a) is type(taken_b)
        assert next_a == next_b


def test_get_oracle_uses_trace_file_across_processes(monkeypatch):
    """A second process (simulated by clearing memos) must not re-execute."""
    first = runner.get_oracle("compress", N)
    assert tracefile.stats()["entries"] == 1
    runner.clear_caches()  # memos only; the trace file survives

    def boom(*args, **kwargs):
        raise AssertionError("functional re-execution despite a stored trace")

    monkeypatch.setattr(runner, "compute_oracle", boom)
    second = runner.get_oracle("compress", N)
    assert [(i.addr, t, p) for i, t, p in first] == \
        [(i.addr, t, p) for i, t, p in second]


def test_trace_files_can_be_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_FILES", "0")
    runner.get_oracle("compress", N)
    assert tracefile.stats()["entries"] == 0


def test_lengths_do_not_collide():
    runner.get_oracle("compress", N)
    runner.get_oracle("compress", N // 2)
    assert tracefile.stats()["entries"] == 2
    program = runner.get_program("compress")
    assert len(tracefile.load_oracle("compress", N // 2, program)) == N // 2


# --- corruption and version recovery (mirrors the result cache's rules) ------


def _stored_path():
    runner.get_oracle("compress", N)
    path = tracefile.trace_path("compress", N)
    assert path.exists()
    return path


def test_wrong_version_is_discarded():
    path = _stored_path()
    raw = bytearray(path.read_bytes())
    # Overwrite the version field (bytes 4:8 of the header).
    raw[4:8] = struct.pack("<I", tracefile.TRACE_FORMAT_VERSION + 1)
    path.write_bytes(bytes(raw))

    program = runner.get_program("compress")
    assert tracefile.load_oracle("compress", N, program) is None
    assert not path.exists()  # deleted, not left to shadow future writes


def test_truncated_file_is_discarded():
    path = _stored_path()
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    assert tracefile.load_oracle("compress", N, runner.get_program("compress")) is None
    assert not path.exists()


def test_bit_flip_fails_checksum_and_recovers():
    path = _stored_path()
    raw = bytearray(path.read_bytes())
    raw[-3] ^= 0xFF  # corrupt the payload, keep the header plausible
    path.write_bytes(bytes(raw))

    runner.clear_caches()
    # The corrupt file is a miss: get_oracle recomputes and re-stores.
    oracle = runner.get_oracle("compress", N)
    assert len(oracle) == N
    assert tracefile.load_oracle("compress", N, runner.get_program("compress")) is not None


def test_garbage_file_is_discarded():
    path = _stored_path()
    path.write_bytes(b"definitely not a trace file")
    assert tracefile.load_oracle("compress", N, runner.get_program("compress")) is None
    assert not path.exists()


# --- end-to-end equality: serial == parallel == trace-replayed ---------------


def _machine_grid():
    return [GridPoint("machine", b, MachineConfig(frontend=c), 2_000, warmup)
            for b in ("compress", "m88ksim")
            for c, warmup in ((BASELINE, True), (PROMOTION_PACKING, False))]


def test_serial_parallel_and_trace_replayed_results_are_equal(monkeypatch):
    serial = run_grid(_machine_grid(), jobs=1)

    runner.clear_caches(disk=True)
    parallel = run_grid(_machine_grid(), jobs=2)

    # Third pass: memos cleared but trace files kept, so every warmup
    # oracle is replayed from the binary trace instead of re-executed.
    runner.clear_caches()
    for path in tracefile.trace_dir().glob("*.trace"):
        assert path.exists()
    monkeypatch.setattr(runner, "compute_oracle",
                        lambda *a, **k: pytest.fail("oracle re-executed"))
    import repro.experiments.diskcache as diskcache
    diskcache.purge()  # force real re-simulation, not a cached result load
    replayed = run_grid(_machine_grid(), jobs=1)

    serial_json = sorted(json.dumps(machine_result_to_dict(r), sort_keys=True)
                         for r in serial.values())
    parallel_json = sorted(json.dumps(machine_result_to_dict(r), sort_keys=True)
                           for r in parallel.values())
    replayed_json = sorted(json.dumps(machine_result_to_dict(r), sort_keys=True)
                           for r in replayed.values())
    assert serial_json == parallel_json == replayed_json
