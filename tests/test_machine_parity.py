"""Byte-level parity between the columnar core and the frozen seed core.

The current machine (:mod:`repro.core.machine`) flattened all in-flight
state into preallocated column arrays indexed by circular window slot
and compiled per-fetch-block issue plans — pure performance changes on
top of the earlier event-driven loop.  These tests pin the contract that
makes the optimizations trustworthy: on identical inputs, its serialized
:class:`MachineResult` must be **byte-identical** to the one produced by
the frozen reference copy of the seed implementation
(:mod:`repro.core.machine_reference`), including every cycle count,
event counter, and derived rate.

The cases deliberately cross the interesting machine features: cold and
functionally warmed front ends, promotion (promoted-branch faults),
trace packing, the plain icache front end, the perfect-memory-
disambiguation scheduler, and seeded-random ablation draws (inactive
issue off).  A second group pins the one-pass multi-config runner path
(:func:`runner.run_machine_multi`) and the ``REPRO_FAST_MACHINE``
escape hatch.
"""

import dataclasses
import random

import pytest

from repro import config as cfg
from repro.config import CoreConfig, MachineConfig
from repro.core.machine import Machine
from repro.core.machine_reference import Machine as ReferenceMachine
from repro.experiments import runner
from repro.experiments.cachekey import canonical_json
from repro.experiments.serialize import machine_result_to_dict
from repro.frontend.build import build_engine
from repro.frontend.simulator import FrontEndSimulator

#: Machine window length for the parity runs; the warmup, when on, uses
#: a longer oracle-driven front-end pass first (as the runner does).
N = 4_000
WARMUP_N = 10_000

CASES = [
    pytest.param("compress", MachineConfig(frontend=cfg.BASELINE),
                 False, id="compress-baseline-cold"),
    pytest.param("compress", MachineConfig(frontend=cfg.PROMOTION),
                 True, id="compress-promotion-warm"),
    pytest.param("li", MachineConfig(frontend=cfg.PROMOTION_PACKING),
                 False, id="li-packing-cold"),
    pytest.param("gcc", MachineConfig(frontend=cfg.ICACHE),
                 True, id="gcc-icache-warm"),
    pytest.param("go",
                 MachineConfig(frontend=cfg.BASELINE,
                               core=CoreConfig(perfect_disambiguation=True)),
                 True, id="go-perfect-disamb-warm"),
]


def _run(machine_cls, benchmark: str, config: MachineConfig, warmup: bool):
    program = runner.get_program(benchmark)
    engine = None
    if warmup:
        engine = build_engine(program, config.frontend,
                              memory_config=config.memory)
        FrontEndSimulator(program, config.frontend,
                          oracle=runner.get_oracle(benchmark, WARMUP_N),
                          engine=engine).run()
    return machine_cls(program, config, max_instructions=N,
                       engine=engine).run()


@pytest.mark.parametrize("bench, config, warmup", CASES)
def test_event_driven_core_matches_reference(bench, config, warmup):
    reference = _run(ReferenceMachine, bench, config, warmup)
    optimized = _run(Machine, bench, config, warmup)
    assert canonical_json(machine_result_to_dict(optimized)) == \
        canonical_json(machine_result_to_dict(reference))


def test_parity_covers_ipc_exactly():
    """IPC equality is exact (not approximate): same cycles, same retires."""
    config = MachineConfig(frontend=cfg.PROMOTION_PACKING)
    reference = _run(ReferenceMachine, "compress", config, True)
    optimized = _run(Machine, "compress", config, True)
    assert optimized.cycles == reference.cycles
    assert optimized.retired == reference.retired
    assert optimized.ipc == reference.ipc


# ---------------------------------------------------- randomized ablations

#: Front ends the directed cases above do not stress: inactive issue off
#: (the flag exists only for ablation, so nothing else exercises the
#: active-slots-only paths), with and without the other paper features.
_ABLATION_FRONTENDS = (
    dataclasses.replace(cfg.BASELINE, inactive_issue=False),
    dataclasses.replace(cfg.PROMOTION, inactive_issue=False),
    dataclasses.replace(cfg.PROMOTION_PACKING, inactive_issue=False),
)


def _random_ablation_cases(count: int = 4):
    """Seeded random draw over (benchmark, ablation config, warmup).

    Deterministic (fixed seed) so a failure reproduces, but the specific
    combinations are not hand-picked: each draw crosses an inactive-issue
    ablation with a random benchmark, a random memory-disambiguation mode
    (conservative vs the figure-16 perfect scheduler), and a random
    warmup decision.
    """
    rng = random.Random(1998)
    cases = []
    for i in range(count):
        bench = rng.choice(("compress", "li", "go", "m88ksim"))
        frontend = rng.choice(_ABLATION_FRONTENDS)
        perfect = rng.random() < 0.5
        warmup = rng.random() < 0.5
        config = MachineConfig(frontend=frontend,
                               core=CoreConfig(perfect_disambiguation=perfect))
        tag = "perfmem" if perfect else "conservative"
        cases.append(pytest.param(bench, config, warmup,
                                  id=f"rand{i}-{bench}-{tag}"))
    return cases


@pytest.mark.parametrize("bench, config, warmup", _random_ablation_cases())
def test_randomized_ablation_parity(bench, config, warmup):
    reference = _run(ReferenceMachine, bench, config, warmup)
    optimized = _run(Machine, bench, config, warmup)
    assert canonical_json(machine_result_to_dict(optimized)) == \
        canonical_json(machine_result_to_dict(reference))


# ------------------------------------------------- multi-config machine runs

def test_run_machine_multi_matches_per_point():
    """One-pass batched grid == isolated per-point runs, same cache keys.

    The batched pass shares one program and one oracle stream across the
    configs, but every result must serialize byte-identically to an
    isolated :func:`runner.machine_result` call, and must land on disk
    under the **unchanged** per-config cache key (the scheduler's
    checkpoint journal and the fault harness address entries by that
    key, so a batched run has to be indistinguishable from singles).
    """
    from repro.experiments import diskcache

    configs = [MachineConfig(frontend=cfg.BASELINE),
               MachineConfig(frontend=cfg.PROMOTION),
               MachineConfig(frontend=cfg.PROMOTION_PACKING)]
    n = 1_500
    runner.clear_caches(disk=True)
    singles = [runner.machine_result("compress", c, n, warmup=False)
               for c in configs]
    runner.clear_caches(disk=True)
    batched = runner.run_machine_multi("compress", configs, n, warmup=False)
    assert [canonical_json(machine_result_to_dict(r)) for r in batched] == \
        [canonical_json(machine_result_to_dict(r)) for r in singles]
    for config, result in zip(configs, batched):
        key = runner.machine_cache_key("compress", config, n, warmup=False)
        assert diskcache.load(key) == machine_result_to_dict(result)


def test_fast_machine_flag_pins_reference_core(monkeypatch):
    """``REPRO_FAST_MACHINE=0`` routes runner machine runs to the seed core.

    The knob is the escape hatch if columnar-core parity is ever in
    doubt in the field; it must actually instantiate the reference
    implementation, and the result must not change.
    """
    from repro.core import machine_reference

    calls = []
    real = machine_reference.Machine

    class Spy(real):
        def __init__(self, *args, **kwargs):
            calls.append(1)
            real.__init__(self, *args, **kwargs)

    monkeypatch.setattr(machine_reference, "Machine", Spy)
    config = MachineConfig(frontend=cfg.BASELINE)
    # An armed divergence guard instantiates the reference core on every
    # point by design; disarm it so the spy observes only the routing.
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    monkeypatch.setenv("REPRO_FAST_MACHINE", "0")
    runner.clear_caches(disk=True)
    pinned = runner.machine_result("compress", config, 1_000, warmup=False)
    assert calls, "REPRO_FAST_MACHINE=0 must run the reference core"

    monkeypatch.delenv("REPRO_FAST_MACHINE")
    runner.clear_caches(disk=True)
    calls.clear()
    fast = runner.machine_result("compress", config, 1_000, warmup=False)
    assert not calls, "the default path must use the columnar core"
    assert canonical_json(machine_result_to_dict(fast)) == \
        canonical_json(machine_result_to_dict(pinned))
