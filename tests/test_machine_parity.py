"""Byte-level parity between the event-driven core and the frozen seed core.

The event-driven machine (:mod:`repro.core.machine`) reorganized the
cycle loop around completion events, free-slot counters and quiescent
skip-ahead — a pure performance change.  These tests pin the contract
that makes the optimization trustworthy: on identical inputs, its
serialized :class:`MachineResult` must be **byte-identical** to the one
produced by the frozen reference copy of the seed implementation
(:mod:`repro.core.machine_reference`), including every cycle count,
event counter, and derived rate.

The cases deliberately cross the interesting machine features: cold and
functionally warmed front ends, promotion (promoted-branch faults),
trace packing, the plain icache front end, and the perfect-memory-
disambiguation scheduler.
"""

import pytest

from repro import config as cfg
from repro.config import CoreConfig, MachineConfig
from repro.core.machine import Machine
from repro.core.machine_reference import Machine as ReferenceMachine
from repro.experiments import runner
from repro.experiments.cachekey import canonical_json
from repro.experiments.serialize import machine_result_to_dict
from repro.frontend.build import build_engine
from repro.frontend.simulator import FrontEndSimulator

#: Machine window length for the parity runs; the warmup, when on, uses
#: a longer oracle-driven front-end pass first (as the runner does).
N = 4_000
WARMUP_N = 10_000

CASES = [
    pytest.param("compress", MachineConfig(frontend=cfg.BASELINE),
                 False, id="compress-baseline-cold"),
    pytest.param("compress", MachineConfig(frontend=cfg.PROMOTION),
                 True, id="compress-promotion-warm"),
    pytest.param("li", MachineConfig(frontend=cfg.PROMOTION_PACKING),
                 False, id="li-packing-cold"),
    pytest.param("gcc", MachineConfig(frontend=cfg.ICACHE),
                 True, id="gcc-icache-warm"),
    pytest.param("go",
                 MachineConfig(frontend=cfg.BASELINE,
                               core=CoreConfig(perfect_disambiguation=True)),
                 True, id="go-perfect-disamb-warm"),
]


def _run(machine_cls, benchmark: str, config: MachineConfig, warmup: bool):
    program = runner.get_program(benchmark)
    engine = None
    if warmup:
        engine = build_engine(program, config.frontend,
                              memory_config=config.memory)
        FrontEndSimulator(program, config.frontend,
                          oracle=runner.get_oracle(benchmark, WARMUP_N),
                          engine=engine).run()
    return machine_cls(program, config, max_instructions=N,
                       engine=engine).run()


@pytest.mark.parametrize("bench, config, warmup", CASES)
def test_event_driven_core_matches_reference(bench, config, warmup):
    reference = _run(ReferenceMachine, bench, config, warmup)
    optimized = _run(Machine, bench, config, warmup)
    assert canonical_json(machine_result_to_dict(optimized)) == \
        canonical_json(machine_result_to_dict(reference))


def test_parity_covers_ipc_exactly():
    """IPC equality is exact (not approximate): same cycles, same retires."""
    config = MachineConfig(frontend=cfg.PROMOTION_PACKING)
    reference = _run(ReferenceMachine, "compress", config, True)
    optimized = _run(Machine, "compress", config, True)
    assert optimized.cycles == reference.cycles
    assert optimized.retired == reference.retired
    assert optimized.ipc == reference.ipc
