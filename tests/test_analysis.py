"""Analysis toolkit: branch populations, redundancy reports, timelines."""

import pytest

from repro import BASELINE, PACKING, FrontEndSimulator, assemble, generate_program
from repro.analysis import (
    BranchSiteProfile,
    profile_branches,
    redundancy_report,
    run_with_timeline,
)
from repro.analysis.branches import BranchPopulation


# --- site profiles ---------------------------------------------------------

def test_site_profile_counts_and_runs():
    site = BranchSiteProfile(addr=10)
    for outcome in (True, True, True, False, True, True):
        site.record(outcome)
    assert site.executions == 6
    assert site.taken == 5
    assert site.longest_run == 3
    assert site.longest_run_direction is True
    assert site.taken_rate == pytest.approx(5 / 6)


def test_site_bias_is_symmetric():
    mostly_not_taken = BranchSiteProfile(addr=1)
    for _ in range(19):
        mostly_not_taken.record(False)
    mostly_not_taken.record(True)
    assert mostly_not_taken.bias == pytest.approx(0.95)
    assert mostly_not_taken.is_strongly_biased()


def test_site_promotability_follows_runs():
    site = BranchSiteProfile(addr=1)
    for _ in range(63):
        site.record(True)
    assert not site.promotable_at(64)
    site.record(True)
    assert site.promotable_at(64)


@pytest.mark.parametrize("rate,label", [
    (1.0, "always"), (0.97, "strongly_biased"), (0.9, "nearly_biased"),
    (0.75, "moderate"), (0.55, "hard"),
])
def test_site_classification(rate, label):
    site = BranchSiteProfile(addr=1)
    n = 100
    for i in range(n):
        site.record(i < rate * n)
    assert site.classify() == label


# --- populations -----------------------------------------------------------

def test_population_measures_paper_statistic():
    """Generated workloads must show the paper's >50%-ish biased share."""
    population = profile_branches(generate_program("m88ksim"),
                                  max_instructions=60_000)
    assert population.dynamic_branches > 3_000
    assert population.strongly_biased_fraction(0.9) > 0.4
    assert 0.0 <= population.promotable_fraction(64) <= 1.0
    mix = population.class_mix()
    assert abs(sum(mix.values()) - 1.0) < 1e-9


def test_population_top_sites_sorted():
    population = profile_branches(generate_program("compress"),
                                  max_instructions=30_000)
    top = population.top_sites(5)
    assert len(top) == 5
    assert all(top[i].executions >= top[i + 1].executions for i in range(4))


def test_population_min_executions_filter():
    population = BranchPopulation(sites={}, dynamic_branches=0)
    assert population.strongly_biased_fraction() == 0.0


# --- redundancy reports -------------------------------------------------------

@pytest.fixture(scope="module")
def compress_program():
    return generate_program("compress")


def test_packing_raises_duplication(compress_program):
    base_sim = FrontEndSimulator(compress_program, BASELINE, max_instructions=40_000)
    base_sim.run()
    pack_sim = FrontEndSimulator(compress_program, PACKING, max_instructions=40_000)
    pack_sim.run()
    base = redundancy_report(base_sim.engine.trace_cache)
    pack = redundancy_report(pack_sim.engine.trace_cache)
    assert pack.duplication_factor > base.duplication_factor
    assert pack.fragmentation < base.fragmentation  # packed lines are fuller


def test_report_internal_consistency(compress_program):
    simulator = FrontEndSimulator(compress_program, BASELINE, max_instructions=30_000)
    simulator.run()
    report = redundancy_report(simulator.engine.trace_cache)
    assert report.resident_segments == simulator.engine.trace_cache.resident_segments()
    assert report.stored_instructions >= report.unique_instructions
    assert 0.0 <= report.fragmentation < 1.0
    assert sum(report.reason_mix.values()) == report.resident_segments
    assert report.max_copies_of_one_instruction >= 1
    assert "segments" in report.summary()


def test_empty_cache_report():
    from repro.trace.trace_cache import TraceCache
    report = redundancy_report(TraceCache(64, 4))
    assert report.resident_segments == 0
    assert report.duplication_factor == 0.0


# --- timelines -----------------------------------------------------------------

def test_timeline_shapes(compress_program):
    timeline = run_with_timeline(compress_program, BASELINE,
                                 max_instructions=30_000, window=10_000)
    assert len(timeline.points) == 3
    assert timeline.points[-1].instructions == 30_000
    efr = timeline.windowed_efr()
    assert len(efr) == 3
    assert all(1.0 <= rate <= 16.0 for rate in efr)
    hits = timeline.windowed_tc_hit_rate()
    assert all(0.0 <= rate <= 1.0 for rate in hits)
    # Warmup: the trace cache hits more after the first window.
    assert hits[-1] >= hits[0]


def test_timeline_mispredict_deltas(compress_program):
    timeline = run_with_timeline(compress_program, BASELINE,
                                 max_instructions=20_000, window=5_000)
    deltas = timeline.windowed_mispredicts()
    assert len(deltas) == 4
    assert all(d >= 0 for d in deltas)


def test_timeline_rejects_bad_window(compress_program):
    with pytest.raises(ValueError):
        run_with_timeline(compress_program, BASELINE, window=0)


def test_timeline_restores_program_entry(compress_program):
    entry = compress_program.entry
    run_with_timeline(compress_program, BASELINE, max_instructions=10_000,
                      window=5_000)
    assert compress_program.entry == entry
