"""WorkloadStats edge behaviour and histogram bookkeeping."""

import pytest

from repro.isa import assemble
from repro.workloads import characterize
from repro.workloads.stats import WorkloadStats


def test_empty_stats_properties():
    stats = WorkloadStats(name="x")
    assert stats.avg_block_size == 0.0
    assert stats.taken_rate == 0.0
    assert stats.cond_branch_frac == 0.0
    assert stats.load_frac == stats.store_frac == 0.0
    assert stats.strongly_biased_dynamic_frac() == 0.0


def test_characterize_counts_opcode_classes():
    source = """
        .data
v:      .words 1
        .text
main:   ADDI r10, r0, 20
loop:   LD r1, v(r0)
        ST r1, v(r0)
        CALL fn
        ADDI r10, r10, -1
        BNE r10, r0, loop
        TRAP
        HALT
fn:     RET
"""
    stats = characterize(assemble(source), max_instructions=None)
    assert stats.loads == 20
    assert stats.stores == 20
    assert stats.calls == 20
    assert stats.returns == 20
    assert stats.cond_branches == 20
    assert stats.taken_branches == 19
    assert stats.traps == 1


def test_block_histogram_sums_to_blocks():
    source = "main: ADDI r1, r0, 5\nloop: ADDI r1, r1, -1\n BNE r1, r0, loop\n HALT"
    stats = characterize(assemble(source), max_instructions=None)
    assert sum(stats.block_size_histogram.values()) == stats.fetch_blocks
    # The loop body is a 2-instruction block.
    assert stats.block_size_histogram[2] >= 4


def test_site_rates_feed_bias_fraction():
    # One branch taken 19/20 times (95%): strongly biased at 0.9.
    source = "main: ADDI r1, r0, 20\nloop: ADDI r1, r1, -1\n BNE r1, r0, loop\n HALT"
    stats = characterize(assemble(source), max_instructions=None)
    assert stats.strongly_biased_dynamic_frac(threshold=0.9) == 1.0
    assert stats.strongly_biased_dynamic_frac(threshold=0.99) == 0.0


def test_sites_below_min_executions_ignored():
    stats = WorkloadStats(name="x")
    stats.site_executions[5] = 3  # fewer than 8 executions
    stats.site_taken[5] = 3
    assert stats.strongly_biased_dynamic_frac() == 0.0


def test_static_touched_versus_total():
    source = """
main:   JMP skip
dead:   NOP
        NOP
skip:   HALT
"""
    stats = characterize(assemble(source), max_instructions=None)
    assert stats.static_total == 4
    assert stats.static_touched == 2  # JMP and HALT only
