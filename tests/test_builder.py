"""CodeBuilder / DataBuilder label resolution and fixups."""

import pytest

from repro.isa.opcodes import Opcode
from repro.workloads.builder import CodeBuilder, DataBuilder, finish_program


def test_emit_and_resolve_simple():
    builder = CodeBuilder()
    builder.label("main")
    builder.addi(1, 0, 5)
    builder.emit(Opcode.HALT)
    instructions, symbols = builder.resolve()
    assert symbols == {"main": 0}
    assert [i.op for i in instructions] == [Opcode.ADDI, Opcode.HALT]


def test_forward_label_resolution():
    builder = CodeBuilder()
    builder.label("main")
    target = builder.new_label("end")
    builder.jump(target)
    builder.emit(Opcode.NOP)
    builder.label(target)
    builder.emit(Opcode.HALT)
    instructions, _symbols = builder.resolve()
    assert instructions[0].target == 2


def test_backward_branch():
    builder = CodeBuilder()
    top = builder.label("top")
    builder.addi(1, 1, -1)
    builder.branch(Opcode.BNE, 1, 0, top)
    instructions, _ = builder.resolve()
    assert instructions[1].target == 0


def test_unique_label_generation():
    builder = CodeBuilder()
    labels = {builder.new_label() for _ in range(100)}
    assert len(labels) == 100


def test_duplicate_label_rejected():
    builder = CodeBuilder()
    builder.label("x")
    with pytest.raises(ValueError, match="already placed"):
        builder.label("x")


def test_undefined_target_rejected():
    builder = CodeBuilder()
    builder.jump("nowhere")
    with pytest.raises(ValueError, match="undefined code label"):
        builder.resolve()


def test_branch_helper_rejects_non_branch():
    builder = CodeBuilder()
    with pytest.raises(ValueError):
        builder.branch(Opcode.JMP, 1, 0, "x")


def test_data_label_binding():
    code = CodeBuilder()
    data = DataBuilder()
    data.array("arr", [1, 2, 3])
    code.label("main")
    code.load(1, 0, "arr")
    code.emit(Opcode.HALT)
    program = finish_program(code, data, name="t")
    assert program.instructions[0].imm == 0
    assert program.data[0] == 1


def test_unbound_data_label_rejected():
    code = CodeBuilder()
    code.load(1, 0, "missing")
    with pytest.raises(ValueError):
        code.resolve()


def test_data_builder_layout():
    data = DataBuilder()
    a = data.array("a", [5, 0, 7])
    b = data.space("b", 10)
    c = data.array("c", [1])
    assert (a, b, c) == (0, 3, 13)
    image = data.image
    assert image[0] == 5 and image[2] == 7 and image[13] == 1
    assert 1 not in image  # zeros are sparse


def test_jump_table_patching():
    code = CodeBuilder()
    data = DataBuilder()
    data.jump_table("jt", ["case_a", "case_b"])
    code.label("main")
    code.emit(Opcode.HALT)
    code.label("case_a")
    code.emit(Opcode.NOP)
    code.label("case_b")
    code.emit(Opcode.NOP)
    program = finish_program(code, data, name="t")
    base = program.data_symbols["jt"]
    assert program.data[base] == program.symbols["case_a"]
    assert program.data[base + 1] == program.symbols["case_b"]


def test_jump_table_undefined_entry():
    code = CodeBuilder()
    data = DataBuilder()
    data.jump_table("jt", ["missing"])
    code.label("main")
    code.emit(Opcode.HALT)
    with pytest.raises(ValueError, match="undefined"):
        finish_program(code, data, name="t")


def test_duplicate_data_label():
    data = DataBuilder()
    data.array("x", [1])
    with pytest.raises(ValueError):
        data.array("x", [2])


def test_here_tracks_position():
    builder = CodeBuilder()
    assert builder.here == 0
    builder.emit(Opcode.NOP)
    assert builder.here == 1
    assert len(builder) == 1
