"""FetchStats bookkeeping: histograms, buckets, derived rates."""

import pytest

from repro.frontend.stats import CycleCategory, FetchReason, FetchRecord, FetchStats


def record(stats, size, reason=FetchReason.MAX_SIZE, predictions=1, source="tc"):
    stats.record_fetch(FetchRecord(size=size, reason=reason,
                                   predictions=predictions, source=source))


def test_effective_fetch_rate():
    stats = FetchStats()
    record(stats, 10)
    record(stats, 6)
    assert stats.effective_fetch_rate == pytest.approx(8.0)
    assert stats.useful_instructions == 16
    assert stats.fetches == 2


def test_empty_stats_are_zero():
    stats = FetchStats()
    assert stats.effective_fetch_rate == 0.0
    assert stats.cond_mispredict_rate == 0.0
    assert stats.predictions_buckets() == {"0 or 1": 0.0, "2": 0.0, "3": 0.0}


def test_source_split():
    stats = FetchStats()
    record(stats, 10, source="tc")
    record(stats, 5, source="icache")
    assert stats.tc_fetches == 1 and stats.icache_fetches == 1


def test_size_histogram_marginalizes_reasons():
    stats = FetchStats()
    record(stats, 10, reason=FetchReason.MAX_SIZE)
    record(stats, 10, reason=FetchReason.MISPRED_BR)
    record(stats, 4, reason=FetchReason.ICACHE)
    assert stats.size_histogram() == {10: 2, 4: 1}
    assert stats.reason_breakdown()[FetchReason.MAX_SIZE] == 1


def test_prediction_buckets():
    stats = FetchStats()
    for predictions in (0, 1, 1, 2, 3, 3, 3, 3):
        record(stats, 8, predictions=predictions)
    buckets = stats.predictions_buckets()
    assert buckets["0 or 1"] == pytest.approx(3 / 8)
    assert buckets["2"] == pytest.approx(1 / 8)
    assert buckets["3"] == pytest.approx(4 / 8)
    assert sum(buckets.values()) == pytest.approx(1.0)


def test_mispredict_rate_includes_faults():
    stats = FetchStats()
    stats.cond_branches = 90
    stats.promoted_branches = 10
    stats.cond_mispredicts = 8
    stats.promoted_faults = 2
    assert stats.total_cond_mispredicts == 10
    assert stats.cond_mispredict_rate == pytest.approx(0.10)


def test_total_mispredicted_includes_indirect():
    stats = FetchStats()
    stats.cond_mispredicts = 5
    stats.promoted_faults = 2
    stats.indirect_mispredicts = 3
    assert stats.total_mispredicted_branches == 10


def test_cycle_categories_cover_figure12():
    labels = {category.value for category in CycleCategory}
    assert labels == {"Useful Fetch", "Branch Misses", "Cache Misses",
                      "Full Window", "Traps", "Misfetches"}


def test_fetch_reasons_cover_figure4():
    labels = {reason.value for reason in FetchReason}
    assert labels == {"PartialMatch", "AtomicBlocks", "Icache", "MispredBR",
                      "MaxSize", "Ret, Indir, Trap", "MaximumBRs"}
