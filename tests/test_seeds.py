"""Multi-seed robustness machinery + a seed-robustness check of the
headline effect."""

import pytest

from repro import BASELINE, PROMOTION_PACKING
from repro.experiments.seeds import SeedStudy, run_seeds, seed_effect


def test_seed_study_statistics():
    study = SeedStudy(benchmark="x", metric="m", values=[1.0, 2.0, 3.0])
    assert study.mean == pytest.approx(2.0)
    assert study.std == pytest.approx(1.0)
    assert study.min == 1.0 and study.max == 3.0
    assert study.fraction_positive() == 1.0
    assert "x/m" in study.summary()


def test_seed_study_degenerate():
    empty = SeedStudy(benchmark="x", metric="m", values=[])
    assert empty.mean == 0.0 and empty.std == 0.0
    single = SeedStudy(benchmark="x", metric="m", values=[5.0])
    assert single.std == 0.0


def test_run_seeds_varies_with_seed():
    study = run_seeds("compress", BASELINE, seeds=[1, 2, 3],
                      max_instructions=15_000)
    assert len(study.values) == 3
    assert all(4.0 < value < 16.0 for value in study.values)
    assert study.std > 0.0  # different seeds, different programs


def test_run_seeds_deterministic_per_seed():
    a = run_seeds("compress", BASELINE, seeds=[7], max_instructions=10_000)
    b = run_seeds("compress", BASELINE, seeds=[7], max_instructions=10_000)
    assert a.values == b.values


def test_headline_effect_is_seed_robust():
    """Promotion+packing beats the baseline for most seeds, not just the
    default one (paired per-seed comparison, shortened runs)."""
    study = seed_effect("compress", BASELINE, PROMOTION_PACKING,
                        seeds=[11, 22, 33], max_instructions=60_000)
    assert len(study.values) == 3
    assert study.fraction_positive() >= 2 / 3
