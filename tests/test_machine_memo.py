"""Timing-memoization safety: memo-on must be invisible in results.

The ``REPRO_MACHINE_MEMO`` layer (:mod:`repro.core.memo`) fast-forwards
the columnar core over recorded (plan, pipeline-context) spans.  Every
test here pins the same contract from a different angle: the memo path
may only change wall-clock time, never a single serialized field of the
:class:`MachineResult`.

Covered: byte-identity across the full parity matrix (directed cases,
inactive-issue/perfect-disambiguation ablations, ``run_machine_multi``
batches), hit/miss/bailout accounting, capacity-one eviction, the
``clear_caches`` / ``reset_tables`` reset proof, the ``REPRO_VALIDATE``
lockout, and the restore-mid-run guard (a rolled-back core never
carries a chained signature into its next fetch).
"""

import dataclasses
import random

import pytest

from repro import config as cfg
from repro.config import CoreConfig, MachineConfig
from repro.core import memo
from repro.core.machine import Machine
from repro.experiments import runner
from repro.experiments.cachekey import canonical_json
from repro.experiments.serialize import machine_result_to_dict
from repro.frontend.build import build_engine
from repro.frontend.simulator import FrontEndSimulator

N = 4_000
WARMUP_N = 10_000

#: The directed parity matrix (mirrors test_machine_parity.CASES) plus
#: the benchmark with the highest measured steady-state hit rate.
CASES = [
    pytest.param("compress", MachineConfig(frontend=cfg.BASELINE),
                 False, id="compress-baseline-cold"),
    pytest.param("compress", MachineConfig(frontend=cfg.PROMOTION),
                 True, id="compress-promotion-warm"),
    pytest.param("li", MachineConfig(frontend=cfg.PROMOTION_PACKING),
                 False, id="li-packing-cold"),
    pytest.param("gcc", MachineConfig(frontend=cfg.ICACHE),
                 True, id="gcc-icache-warm"),
    pytest.param("go",
                 MachineConfig(frontend=cfg.BASELINE,
                               core=CoreConfig(perfect_disambiguation=True)),
                 True, id="go-perfect-disamb-warm"),
    pytest.param("perl", MachineConfig(frontend=cfg.PROMOTION_PACKING),
                 True, id="perl-packing-warm"),
]

_ABLATION_FRONTENDS = (
    dataclasses.replace(cfg.BASELINE, inactive_issue=False),
    dataclasses.replace(cfg.PROMOTION, inactive_issue=False),
    dataclasses.replace(cfg.PROMOTION_PACKING, inactive_issue=False),
)


def _random_ablation_cases(count: int = 4):
    """Same seeded draw as the parity suite's ablation matrix."""
    rng = random.Random(1998)
    cases = []
    for i in range(count):
        bench = rng.choice(("compress", "li", "go", "m88ksim"))
        frontend = rng.choice(_ABLATION_FRONTENDS)
        perfect = rng.random() < 0.5
        warmup = rng.random() < 0.5
        config = MachineConfig(frontend=frontend,
                               core=CoreConfig(perfect_disambiguation=perfect))
        tag = "perfmem" if perfect else "conservative"
        cases.append(pytest.param(bench, config, warmup,
                                  id=f"rand{i}-{bench}-{tag}"))
    return cases


def _run(benchmark: str, config: MachineConfig, warmup: bool, *,
         n: int = N):
    """One columnar-core run under whatever memo mode is in effect."""
    program = runner.get_program(benchmark)
    engine = None
    if warmup:
        engine = build_engine(program, config.frontend,
                              memory_config=config.memory)
        FrontEndSimulator(program, config.frontend,
                          oracle=runner.get_oracle(benchmark, WARMUP_N),
                          engine=engine).run()
    return Machine(program, config, max_instructions=n,
                   engine=engine).run()


def _ab(monkeypatch, benchmark, config, warmup, *, n: int = N):
    """(memo-off result, memo-on result) for one parity-matrix point."""
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "0")
    off = _run(benchmark, config, warmup, n=n)
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "1")
    memo.reset_tables()
    on = _run(benchmark, config, warmup, n=n)
    memo.reset_tables()
    return off, on


@pytest.mark.parametrize("bench, config, warmup", CASES)
def test_memo_byte_identity_directed(monkeypatch, bench, config, warmup):
    off, on = _ab(monkeypatch, bench, config, warmup)
    assert canonical_json(machine_result_to_dict(on)) == \
        canonical_json(machine_result_to_dict(off))


@pytest.mark.parametrize("bench, config, warmup", _random_ablation_cases())
def test_memo_byte_identity_ablations(monkeypatch, bench, config, warmup):
    off, on = _ab(monkeypatch, bench, config, warmup)
    assert canonical_json(machine_result_to_dict(on)) == \
        canonical_json(machine_result_to_dict(off))


def test_memo_accounting(monkeypatch):
    """Hit/miss/bailout accounting lands in ``MachineResult.memo_stats``.

    ``perl`` + packing + warmup is the repo's best recurring-context
    workload, so the run must actually hit; every fast-forwarded span
    advances at least one cycle and replays at least one instruction,
    and the accounting keys must be exactly the documented set.
    """
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "1")
    memo.reset_tables()
    result = _run("perl", MachineConfig(frontend=cfg.PROMOTION_PACKING),
                  True)
    stats = result.memo_stats
    memo.reset_tables()
    assert stats is not None
    assert set(stats) == {"hits", "misses", "bailouts", "aborts",
                          "cycles_fast_forwarded", "instructions_replayed",
                          "table"}
    assert stats["hits"] > 0
    assert stats["misses"] > 0
    assert stats["bailouts"] > 0
    assert stats["cycles_fast_forwarded"] >= stats["hits"]
    assert stats["instructions_replayed"] >= stats["hits"]
    assert stats["table"]["hits"] >= stats["hits"]
    assert stats["table"]["entries"] <= stats["table"]["capacity"]

    monkeypatch.setenv("REPRO_MACHINE_MEMO", "0")
    off = _run("perl", MachineConfig(frontend=cfg.PROMOTION_PACKING), True)
    assert off.memo_stats is None


def test_memo_capacity_eviction(monkeypatch):
    """A capacity-1 table thrashes (evicts on every store) yet stays
    byte-identical — eviction can cost hits, never correctness."""
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "0")
    off = _run("perl", MachineConfig(frontend=cfg.PROMOTION_PACKING), True)
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "1")
    monkeypatch.setenv("REPRO_MACHINE_MEMO_MAX", "1")
    memo.reset_tables()
    on = _run("perl", MachineConfig(frontend=cfg.PROMOTION_PACKING), True)
    stats = on.memo_stats
    memo.reset_tables()
    assert stats["table"]["capacity"] == 1
    assert stats["table"]["entries"] <= 1
    assert stats["table"]["evictions"] > 0
    assert canonical_json(machine_result_to_dict(on)) == \
        canonical_json(machine_result_to_dict(off))


def test_run_machine_multi_memo_identity(monkeypatch):
    """Batched multi-config runs share one memo table across members and
    still serialize identically to memo-off batches."""
    configs = [MachineConfig(frontend=cfg.BASELINE),
               MachineConfig(frontend=cfg.PROMOTION),
               MachineConfig(frontend=cfg.PROMOTION_PACKING)]
    n = 1_500
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "0")
    runner.clear_caches(disk=True)
    off = runner.run_machine_multi("compress", configs, n, warmup=False)
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "1")
    runner.clear_caches(disk=True)
    on = runner.run_machine_multi("compress", configs, n, warmup=False)
    runner.clear_caches(disk=True)
    assert [canonical_json(machine_result_to_dict(r)) for r in on] == \
        [canonical_json(machine_result_to_dict(r)) for r in off]


def test_clear_caches_drops_memo_tables(monkeypatch):
    """``runner.clear_caches()`` empties the memo tables, and a
    post-reset run is result-identical to the pre-reset one."""
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "1")
    memo.reset_tables()
    config = MachineConfig(frontend=cfg.PROMOTION_PACKING)
    first = _run("perl", config, True)
    assert memo.default_table().stats()["entries"] > 0
    runner.clear_caches()
    assert memo.default_table().stats()["entries"] == 0
    assert memo.default_table().stats()["hits"] == 0
    second = _run("perl", config, True)
    memo.reset_tables()
    assert canonical_json(machine_result_to_dict(second)) == \
        canonical_json(machine_result_to_dict(first))


def test_validate_mode_disables_memo(monkeypatch):
    """The lockstep guard outranks the memo knob: under
    ``REPRO_VALIDATE`` the machine must not attach a memo table even
    with ``REPRO_MACHINE_MEMO=1`` forced."""
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "1")
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    program = runner.get_program("compress")
    machine = Machine(program, MachineConfig(frontend=cfg.BASELINE),
                      max_instructions=100)
    assert machine._memo is None
    result = machine.run()
    assert result.memo_stats is None


def test_memo_off_knob_disables_layer(monkeypatch):
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "0")
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    program = runner.get_program("compress")
    machine = Machine(program, MachineConfig(frontend=cfg.BASELINE),
                      max_instructions=100)
    assert machine._memo is None


def test_restore_never_replays_stale_delta(monkeypatch):
    """A restored core must drop any chained memo signature.

    A hit leaves ``_memo_sig`` describing the pipeline exactly as the
    applied delta left it; a checkpoint restore rewinds that pipeline,
    so carrying the signature forward could key a delta recorded for a
    state the machine is no longer in.  Instrument both restore paths
    on a run with real mispredict recoveries and require (a) that
    recoveries actually happened, and (b) that every restore left the
    chained signature cleared — then require byte-identity end to end.
    """
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "1")
    memo.reset_tables()

    restores = []
    real_restore = Machine._restore

    def spy_restore(self, cp):
        real_restore(self, cp)
        restores.append(self._memo_sig)

    monkeypatch.setattr(Machine, "_restore", spy_restore)
    config = MachineConfig(frontend=cfg.PROMOTION_PACKING)
    on = _run("perl", config, True)
    memo.reset_tables()
    assert on.memo_stats["hits"] > 0, "run must exercise the memo path"
    assert restores, "run must exercise checkpoint restores"
    assert all(sig is None for sig in restores), \
        "restore carried a chained memo signature forward"

    monkeypatch.setattr(Machine, "_restore", real_restore)
    monkeypatch.setenv("REPRO_MACHINE_MEMO", "0")
    off = _run("perl", config, True)
    assert canonical_json(machine_result_to_dict(on)) == \
        canonical_json(machine_result_to_dict(off))
