"""The experiment scheduler and the persistent result cache."""

import json
import os

import pytest

from repro.config import (
    BASELINE,
    PROMOTION,
    PROMOTION_PACKING,
    CoreConfig,
    MachineConfig,
)
from repro.experiments import diskcache, runner
from repro.experiments.cachekey import (
    cache_key,
    code_fingerprint,
    config_from_dict,
    config_to_dict,
)
from repro.experiments.scheduler import GridPoint, resolve_jobs, run_grid
from repro.experiments.serialize import (
    frontend_result_to_dict,
    machine_result_to_dict,
)
from repro.mem.hierarchy import MemoryConfig

N = 6_000


@pytest.fixture(autouse=True)
def fresh_cache(tmp_path, monkeypatch):
    """Every test gets its own empty disk cache and empty memos."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    runner.clear_caches()
    yield
    runner.clear_caches()


# --- cache keys --------------------------------------------------------------


def test_config_dict_round_trip():
    for config in (BASELINE, PROMOTION_PACKING,
                   MachineConfig(frontend=PROMOTION,
                                 memory=MemoryConfig(l1d_bytes=32 * 1024),
                                 core=CoreConfig(perfect_disambiguation=True))):
        data = config_to_dict(config)
        json.dumps(data)  # must be JSON-able as-is
        assert config_from_dict(data) == config


def test_config_round_trip_preserves_enums():
    restored = config_from_dict(config_to_dict(PROMOTION_PACKING))
    assert restored.packing is PROMOTION_PACKING.packing


def test_cache_key_stability_and_sensitivity():
    key = cache_key("frontend", "compress", BASELINE, N)
    assert key == cache_key("frontend", "compress", BASELINE, N)
    assert key != cache_key("frontend", "compress", BASELINE, N + 1)
    assert key != cache_key("frontend", "compress", PROMOTION, N)
    assert key != cache_key("frontend", "m88ksim", BASELINE, N)
    assert key != cache_key("machine", "compress", BASELINE, N)
    assert len(key) == 64  # sha256 hex


def test_code_fingerprint_is_cached_and_hex():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


# --- disk cache --------------------------------------------------------------


def test_disk_cache_hit_skips_simulation(monkeypatch):
    first = runner.frontend_result("compress", BASELINE, N)
    assert diskcache.stats()["entries"] == 1

    runner.clear_caches()  # memos only; the disk entry survives

    def boom(*args, **kwargs):
        raise AssertionError("simulated despite a disk cache hit")

    monkeypatch.setattr(runner, "FrontEndSimulator", boom)
    second = runner.frontend_result("compress", BASELINE, N)
    assert frontend_result_to_dict(first) == frontend_result_to_dict(second)


def test_machine_disk_round_trip():
    config = MachineConfig(frontend=BASELINE)
    first = runner.machine_result("compress", config, 2_000, warmup=False)
    runner.clear_caches()
    second = runner.machine_result("compress", config, 2_000, warmup=False)
    assert machine_result_to_dict(first) == machine_result_to_dict(second)
    assert second.ipc == first.ipc


def test_corrupted_cache_file_recovers():
    runner.frontend_result("compress", BASELINE, N)
    key = cache_key("frontend", "compress", BASELINE, N)
    path = diskcache.cache_dir() / f"{key}.json"
    assert path.exists()
    path.write_text("{not json at all")

    runner.clear_caches()
    result = runner.frontend_result("compress", BASELINE, N)  # recomputes
    assert result.instructions_retired == N
    # The corrupt entry was replaced by a good one.
    assert diskcache.load(key) is not None


def test_wrong_version_entry_is_discarded():
    runner.frontend_result("compress", BASELINE, N)
    key = cache_key("frontend", "compress", BASELINE, N)
    path = diskcache.cache_dir() / f"{key}.json"
    envelope = json.loads(path.read_text())
    envelope["version"] = -1
    path.write_text(json.dumps(envelope))
    assert diskcache.load(key) is None
    assert not path.exists()  # deleted, not left to shadow future writes


def test_disk_cache_can_be_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    runner.frontend_result("compress", BASELINE, N)
    assert diskcache.stats()["entries"] == 0


def test_clear_caches_disk_purges():
    runner.frontend_result("compress", BASELINE, N)
    assert diskcache.stats()["entries"] == 1
    runner.clear_caches(disk=True)
    assert diskcache.stats()["entries"] == 0


# --- scheduler ---------------------------------------------------------------


def _grid():
    return [GridPoint("frontend", b, c, N)
            for b in ("compress", "m88ksim")
            for c in (BASELINE, PROMOTION_PACKING)]


def test_parallel_matches_serial_byte_identical():
    parallel = run_grid(_grid(), jobs=2)
    runner.clear_caches(disk=True)
    serial = run_grid(_grid(), jobs=1)
    assert set(parallel) == set(serial)
    for point in parallel:
        left = json.dumps(frontend_result_to_dict(parallel[point]), sort_keys=True)
        right = json.dumps(frontend_result_to_dict(serial[point]), sort_keys=True)
        assert left == right


def test_run_grid_populates_runner_memo():
    run_grid(_grid(), jobs=2)
    # Direct runner calls must now be memo hits: same object every time.
    first = runner.frontend_result("compress", BASELINE, N)
    assert runner.frontend_result("compress", BASELINE, N) is first


def test_run_grid_serves_cached_points_without_pool(monkeypatch):
    run_grid(_grid(), jobs=1)
    import repro.experiments.scheduler as scheduler

    def boom(*args, **kwargs):
        raise AssertionError("pool created for a fully cached grid")

    monkeypatch.setattr(scheduler, "ProcessPoolExecutor", boom)
    results = run_grid(_grid(), jobs=4)
    assert len(results) == 4


def test_run_grid_deduplicates():
    point = GridPoint("frontend", "compress", BASELINE, N)
    results = run_grid([point, point, point], jobs=1)
    assert len(results) == 1


def test_machine_grid_points():
    config = MachineConfig(frontend=BASELINE)
    results = run_grid(
        [GridPoint("machine", "compress", config, 2_000, warmup=False)], jobs=1)
    (result,) = results.values()
    assert result.retired == 2_000


def _no_pool(monkeypatch):
    import repro.experiments.scheduler as scheduler

    def boom(*args, **kwargs):
        raise AssertionError("a process pool was created")

    monkeypatch.setattr(scheduler, "ProcessPoolExecutor", boom)


def test_env_jobs_one_runs_inline(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "1")
    _no_pool(monkeypatch)
    serial = run_grid(_grid())
    assert len(serial) == 4
    # Same points by the explicit-argument route: identical memo objects.
    assert run_grid(_grid(), jobs=1) == serial


def test_single_point_grid_runs_inline(monkeypatch):
    _no_pool(monkeypatch)
    results = run_grid([GridPoint("frontend", "compress", BASELINE, N)], jobs=4)
    assert len(results) == 1


def test_pool_respawn_after_worker_crash_matches_serial(monkeypatch):
    """A machine grid whose first worker dies mid-run: the respawned pool
    finishes it with byte-identical results to a clean serial run."""
    config = MachineConfig(frontend=BASELINE)
    grid = [GridPoint("machine", b, config, 2_000, warmup=False)
            for b in ("compress", "m88ksim")]
    serial = run_grid(grid, jobs=1)
    runner.clear_caches(disk=True)

    monkeypatch.setenv("REPRO_FAULTS", "crash:p0")
    monkeypatch.setenv("REPRO_RETRIES", "3")
    monkeypatch.setenv("REPRO_BACKOFF", "0.01")
    respawned = run_grid(grid, jobs=2)
    assert set(respawned) == set(serial)
    for point in serial:
        assert (machine_result_to_dict(respawned[point])
                == machine_result_to_dict(serial[point]))


def test_resolve_jobs(monkeypatch):
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == 1
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    monkeypatch.setenv("REPRO_JOBS", "junk")
    with pytest.warns(RuntimeWarning):
        assert resolve_jobs() == max(1, os.cpu_count() or 1)
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs() == max(1, os.cpu_count() or 1)


def test_unknown_grid_kind_rejected():
    with pytest.raises(ValueError):
        GridPoint("backend", "compress", BASELINE).resolved()


# --- run-length env knobs ----------------------------------------------------


def test_quick_and_scale_compose(monkeypatch):
    monkeypatch.delenv("REPRO_QUICK", raising=False)
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert runner.quick_scale() == 1.0
    monkeypatch.setenv("REPRO_QUICK", "1")
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert runner.quick_scale() == pytest.approx(0.125)


def test_invalid_scale_warns_once(monkeypatch):
    monkeypatch.delenv("REPRO_QUICK", raising=False)
    monkeypatch.setenv("REPRO_SCALE", "fast")
    runner.clear_caches()  # reset the warn-once latch
    with pytest.warns(RuntimeWarning, match="REPRO_SCALE"):
        assert runner.quick_scale() == 1.0
    # Second call: silent (already warned) but same fallback.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert runner.quick_scale() == 1.0
