"""Workload generator and profiles: the programs must be valid, seeded,
terminating, and realize their intended populations."""

import pytest

from repro.isa import FunctionalExecutor
from repro.workloads import characterize, generate_program
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    PROFILES,
    TABLE4_BENCHMARKS,
    get_profile,
)

SMALL = ["compress", "li", "plot"]


def test_all_fifteen_paper_benchmarks_present():
    assert len(BENCHMARK_NAMES) == 15
    assert set(BENCHMARK_NAMES) == set(PROFILES)


def test_table4_subset_is_big_footprint():
    assert set(TABLE4_BENCHMARKS) <= set(BENCHMARK_NAMES)
    for name in TABLE4_BENCHMARKS:
        assert get_profile(name).default_dynamic >= 200_000


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError, match="unknown benchmark"):
        get_profile("spice")


def test_bias_mix_sums_to_one():
    for profile in PROFILES.values():
        assert sum(profile.bias_mix.values()) == pytest.approx(1.0)


def test_generation_is_deterministic():
    a = generate_program("compress")
    b = generate_program("compress")
    assert len(a) == len(b)
    assert [i.disassemble() for i in a.instructions[:200]] == \
        [i.disassemble() for i in b.instructions[:200]]


def test_seed_override_changes_program():
    a = generate_program("compress")
    b = generate_program("compress", seed=999)
    assert [i.disassemble() for i in a.instructions[:200]] != \
        [i.disassemble() for i in b.instructions[:200]]


@pytest.mark.parametrize("name", SMALL)
def test_programs_validate_and_execute(name):
    program = generate_program(name)
    program.validate_targets()
    executor = FunctionalExecutor(program, max_instructions=15_000)
    assert executor.run_to_completion() == 15_000  # still running at cap
    assert not any(r < 0 for r in executor.state.regs)


def test_programs_terminate_without_cap():
    """A drastically shrunk profile runs to its HALT."""
    from dataclasses import replace
    from repro.workloads.generator import WorkloadGenerator
    tiny = replace(get_profile("compress"), outer_iters=2, n_phases=2,
                   stmts_per_phase=(6, 8), hot_trip=(3, 5), phase_trip=(2, 2))
    program = WorkloadGenerator(tiny).generate()
    executor = FunctionalExecutor(program, max_instructions=2_000_000)
    executor.run_to_completion()
    assert executor.state.instret < 2_000_000  # reached HALT


@pytest.mark.parametrize("name", SMALL)
def test_population_statistics(name):
    stats = characterize(generate_program(name), max_instructions=30_000)
    assert 3.0 <= stats.avg_block_size <= 16.0
    assert 0.05 <= stats.cond_branch_frac <= 0.30
    assert 0.08 <= stats.load_frac <= 0.40
    assert 0.4 <= stats.taken_rate <= 0.85


def test_static_footprint_ordering():
    """Big-footprint benchmarks must dwarf the tight-loop ones."""
    gcc = len(generate_program("gcc"))
    compress = len(generate_program("compress"))
    assert gcc > 4 * compress


def test_interpreters_have_indirect_jumps():
    stats = characterize(generate_program("li"), max_instructions=60_000)
    assert stats.indirect_jumps > 10
    assert stats.calls > 25


def test_phase_flip_benchmark_has_mutator():
    program = generate_program("plot")
    assert "mutate_flips" in program.symbols
    assert get_profile("plot").has_phase_flips


def test_non_flip_benchmark_has_no_mutator():
    program = generate_program("compress")
    assert "mutate_flips" not in program.symbols


def test_table1_metadata_matches_the_paper():
    expected = {
        "compress": 95, "gcc": 157, "go": 151, "ijpeg": 500, "li": 500,
        "m88ksim": 493, "perl": 41, "vortex": 214, "gnuchess": 119,
        "gs": 180, "pgp": 322, "python": 220, "plot": 284, "ss": 100,
        "tex": 164,
    }
    for name, count in expected.items():
        assert get_profile(name).paper_inst_count_m == count


def test_strongly_biased_population_supports_promotion():
    """Promotion depends on >50% of dynamic branches being biased; our
    workloads should have a substantial biased fraction (site-weighted)."""
    stats = characterize(generate_program("m88ksim"), max_instructions=40_000)
    assert stats.strongly_biased_dynamic_frac(threshold=0.9) > 0.3


def test_characterize_counts_everything():
    stats = characterize(generate_program("compress"), max_instructions=10_000)
    assert stats.dynamic_instructions == 10_000
    assert stats.fetch_blocks > 0
    assert stats.static_touched > 100
    total_hist = sum(stats.block_size_histogram.values())
    assert total_hist == stats.fetch_blocks
