"""Byte-level parity between the fast front end and the frozen reference.

The fast stack (array-backed predictors in :mod:`repro.branch`, compiled
segment fetch plans in :mod:`repro.frontend.fetch`, the state-machine
fill unit in :mod:`repro.trace.fill_unit`) is a pure performance change.
These tests pin the contract that makes it trustworthy: on identical
inputs its serialized :class:`FrontEndResult` — every counter in
``FetchStats``, every histogram bucket, every derived rate — must be
**byte-identical** to the frozen seed copies
(:mod:`repro.branch.reference`, :mod:`repro.frontend.fetch_reference`,
:mod:`repro.trace.fill_unit_reference`), and the two stacks must stay in
lockstep fetch-by-fetch through randomized probe streams and mid-stream
snapshot/restore round trips.
"""

import random
from dataclasses import replace

import pytest

from repro import config as cfg
from repro.experiments import runner
from repro.experiments.cachekey import canonical_json
from repro.experiments.serialize import frontend_result_to_dict
from repro.frontend.build import build_engine, build_predictor
from repro.frontend.simulator import FrontEndSimulator

N = 12_000

CASES = [
    pytest.param("compress", cfg.BASELINE, id="compress-baseline"),
    pytest.param("compress", cfg.PROMOTION_PACKING, id="compress-packing"),
    pytest.param("gcc", cfg.PROMOTION, id="gcc-promotion"),
    pytest.param("gcc", cfg.PROMOTION_PACKING, id="gcc-packing"),
    pytest.param("go", cfg.PROMOTION_COST_REG, id="go-cost-regulated"),
    pytest.param("perl", cfg.ICACHE, id="perl-icache"),
]


def _run(benchmark: str, config, fast: bool):
    program = runner.get_program(benchmark)
    engine = build_engine(program, config, fast=fast)
    return FrontEndSimulator(program, config,
                             oracle=runner.get_oracle(benchmark, N),
                             engine=engine).run()


@pytest.mark.parametrize("bench, config", CASES)
def test_fast_frontend_matches_reference(bench, config):
    reference = _run(bench, config, fast=False)
    optimized = _run(bench, config, fast=True)
    assert canonical_json(frontend_result_to_dict(optimized)) == \
        canonical_json(frontend_result_to_dict(reference))


def test_parity_covers_fetch_stats_exactly():
    """Stats equality is exact: same fetch counts, same histogram buckets."""
    reference = _run("compress", cfg.PROMOTION_PACKING, fast=False)
    optimized = _run("compress", cfg.PROMOTION_PACKING, fast=True)
    assert optimized.stats.fetches == reference.stats.fetches
    assert optimized.stats.cond_mispredicts == reference.stats.cond_mispredicts
    assert optimized.stats.promoted_branches == reference.stats.promoted_branches
    assert dict(optimized.stats.size_reason_histogram) == \
        dict(reference.stats.size_reason_histogram)
    assert dict(optimized.stats.predictions_histogram) == \
        dict(reference.stats.predictions_histogram)
    assert optimized.cycles == reference.cycles


@pytest.mark.parametrize("kind", ["tree", "split"])
def test_randomized_predictor_training_parity(kind):
    """The array-backed predictors train identically to the reference.

    Drives both organizations through the same randomized
    predict/update stream — random fetch addresses and histories,
    training each supplied slot with a random mix of agreeing and
    disagreeing outcomes — and requires identical patterns and counter
    tokens at every step.
    """
    config = cfg.BASELINE
    if kind == "split":
        config = replace(config, predictor="split")
    fast = build_predictor(config, fast=True)
    ref = build_predictor(config, fast=False)
    rng = random.Random(0xC0FFEE)
    for _ in range(3_000):
        pc = rng.randrange(1 << 20)
        history = rng.getrandbits(14)
        got_fast = fast.predict(pc, history)
        got_ref = ref.predict(pc, history)
        # The two stacks' MultiPrediction types are distinct classes;
        # compare the fields.
        assert tuple(got_fast.taken) == tuple(got_ref.taken)
        assert tuple(got_fast.indices) == tuple(got_ref.indices)
        # The fast stack's packed-pattern entry point is the same table
        # walk as predict(): identical bits, identical update tokens.
        pattern, t0, t1, t2 = fast.predict_pattern(pc, history)
        assert (t0, t1, t2) == got_fast.indices
        assert tuple(bool((pattern >> k) & 1) for k in range(3)) == \
            got_fast.taken
        path = ()
        for k in range(rng.randrange(4)):
            predicted = got_fast.taken[k]
            taken = predicted if rng.random() < 0.7 else not predicted
            fast.update(got_fast.indices[k], k, path, taken)
            ref.update(got_ref.indices[k], k, path, taken)
            path = path + (taken,)


def test_snapshot_restore_roundtrip_midstream():
    """Fast and reference engines stay in lockstep through randomized
    probes with snapshot/restore round trips interleaved mid-stream."""
    program = runner.get_program("compress")
    oracle = runner.get_oracle("compress", N)
    config = cfg.PROMOTION
    fast = build_engine(program, config, fast=True)
    ref = build_engine(program, config, fast=False)
    # Warm both stacks identically so the probes hit real segments.
    FrontEndSimulator(program, config, oracle=oracle, engine=fast).run()
    FrontEndSimulator(program, config, oracle=oracle, engine=ref).run()

    def sig(result):
        return (
            result.pc,
            result.source,
            result.next_pc,
            tuple(inst.addr for inst in result.active),
            tuple(result.active_dirs),
            tuple(result.active_promoted),
            result.predictions_used,
            result.raw_reason,
            result.divergence,
        )

    rng = random.Random(1998)
    snap_fast = snap_ref = None
    for i in range(400):
        pc = oracle[rng.randrange(len(oracle))][0].addr
        if i % 29 == 0:
            snap_fast, snap_ref = fast.snapshot(), ref.snapshot()
            assert snap_fast == snap_ref
        assert sig(fast.fetch(pc)) == sig(ref.fetch(pc))
        if i % 29 == 17:
            fast.restore(snap_fast)
            ref.restore(snap_ref)
            assert fast.snapshot() == snap_fast
            assert ref.snapshot() == snap_ref
