"""Branch behaviour models: sampled parameters and realized arrays."""

import numpy as np
import pytest

from repro.workloads.behaviors import (
    BranchBehavior,
    BranchKind,
    mix_counts,
    realize_array,
    sample_behavior,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def longest_run(values):
    best = run = 0
    majority = 1 if sum(values) * 2 >= len(values) else 0
    for v in values + values:  # cyclic
        if v == majority:
            run += 1
            best = max(best, run)
        else:
            run = 0
    return min(best, 2 * len(values))


def test_always_taken(rng):
    behavior = sample_behavior(BranchKind.ALWAYS_TAKEN, rng)
    assert behavior.p_taken == 1.0
    assert realize_array(behavior, rng) == [1] * behavior.period


def test_always_not_taken(rng):
    behavior = sample_behavior(BranchKind.ALWAYS_NOT_TAKEN, rng)
    assert behavior.p_taken == 0.0
    assert set(realize_array(behavior, rng)) == {0}


def test_strongly_biased_has_long_runs(rng):
    """Strong bias must give runs long enough to promote at threshold 64."""
    for _ in range(10):
        behavior = sample_behavior(BranchKind.STRONGLY_BIASED, rng)
        assert behavior.is_strongly_biased
        values = realize_array(behavior, rng)
        assert longest_run(values) >= 64


def test_nearly_biased_runs_land_between_thresholds(rng):
    """Nearly-biased branches promote at 64 but not at 256 — the paper's
    premature-promotion population."""
    runs = []
    for _ in range(20):
        behavior = sample_behavior(BranchKind.NEARLY_BIASED, rng)
        values = realize_array(behavior, rng)
        runs.append(longest_run(values))
    assert max(runs) >= 64
    assert min(runs) < 256


def test_moderate_is_clustered_and_short_period(rng):
    behavior = sample_behavior(BranchKind.MODERATE, rng)
    assert behavior.period <= 64
    assert behavior.clusters >= 1


def test_hard_leans_but_does_not_flip_coin(rng):
    for _ in range(10):
        behavior = sample_behavior(BranchKind.HARD, rng)
        p = behavior.p_taken
        assert 0.2 <= p <= 0.8
        assert abs(p - 0.5) >= 0.1


def test_phase_flip_is_pure(rng):
    behavior = sample_behavior(BranchKind.PHASE_FLIP, rng)
    assert behavior.p_taken in (0.0, 1.0)
    assert behavior.period == 64


def test_realized_fraction_tracks_p(rng):
    for kind in (BranchKind.STRONGLY_BIASED, BranchKind.MODERATE, BranchKind.HARD):
        behavior = sample_behavior(kind, rng)
        values = realize_array(behavior, rng)
        realized = sum(values) / len(values)
        assert abs(realized - behavior.p_taken) < 0.15


def test_realize_array_length(rng):
    behavior = BranchBehavior(BranchKind.HARD, 0.5, 128)
    assert len(realize_array(behavior, rng)) == 128


def test_clusters_group_minority(rng):
    behavior = BranchBehavior(BranchKind.STRONGLY_BIASED, 0.97, 256, clusters=1)
    values = realize_array(behavior, rng)
    minority_positions = [i for i, v in enumerate(values) if v == 0]
    assert minority_positions
    # One cluster: positions contiguous (mod wrap).
    spread = max(minority_positions) - min(minority_positions)
    assert spread < len(minority_positions) + 2 or spread > 250


def test_mix_counts(rng):
    mix = {BranchKind.HARD: 0.25, BranchKind.MODERATE: 0.75}
    kinds = mix_counts(100, mix, rng)
    assert len(kinds) == 100
    assert kinds.count(BranchKind.HARD) == 25
    assert kinds.count(BranchKind.MODERATE) == 75


def test_degenerate_p_clamped(rng):
    behavior = BranchBehavior(BranchKind.MODERATE, 0.999, 8)
    values = realize_array(behavior, rng)
    assert 0 in values or sum(values) == 8  # minority forced or pure
    behavior = BranchBehavior(BranchKind.MODERATE, 1.0, 8)
    assert realize_array(behavior, rng) == [1] * 8
