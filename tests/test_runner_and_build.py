"""The experiment runner's caching and the front-end factory."""

import os

import pytest

from repro import BASELINE, ICACHE, PROMOTION
from repro.config import MachineConfig
from repro.frontend.build import build_engine, build_memory, build_predictor
from repro.frontend.fetch import ICacheFetchEngine, TraceFetchEngine
from repro.branch.multiple import MultipleBranchPredictor, SplitMultiplePredictor
from repro.workloads import generate_program


@pytest.fixture(scope="module")
def program():
    return generate_program("compress")


# --- build factory ----------------------------------------------------------

def test_build_tc_engine(program):
    engine = build_engine(program, BASELINE)
    assert isinstance(engine, TraceFetchEngine)
    assert engine.trace_cache.n_lines == 2048
    assert engine.fill_unit.bias_table is None
    assert isinstance(engine.predictor, MultipleBranchPredictor)


def test_build_promotion_engine(program):
    engine = build_engine(program, PROMOTION)
    assert engine.fill_unit.promote
    assert engine.fill_unit.bias_table.threshold == 64
    assert engine.fill_unit.bias_table.entries == 8192


def test_build_icache_engine(program):
    engine = build_engine(program, ICACHE)
    assert isinstance(engine, ICacheFetchEngine)
    # The reference config swaps in the 128KB dual-ported icache.
    assert engine.memory.config.l1i_bytes == 128 * 1024


def test_build_split_predictor(program):
    from dataclasses import replace
    engine = build_engine(program, replace(BASELINE, predictor="split"))
    assert isinstance(engine.predictor, SplitMultiplePredictor)


def test_build_rejects_unknown_kinds(program):
    from dataclasses import replace
    with pytest.raises(ValueError):
        build_engine(program, replace(BASELINE, kind="victim"))
    with pytest.raises(ValueError):
        build_predictor(replace(BASELINE, predictor="perceptron"))


def test_build_memory_sizes():
    memory = build_memory(BASELINE)
    assert memory.config.l1i_bytes == 4 * 1024
    icache_memory = build_memory(ICACHE)
    assert icache_memory.config.l1i_bytes == 128 * 1024


# --- runner caching -----------------------------------------------------------

def test_runner_caches_and_scales(monkeypatch):
    import repro.experiments.runner as runner
    runner.clear_caches()
    monkeypatch.setattr(runner, "default_length", lambda b: 5_000)
    monkeypatch.setattr(runner, "machine_length", lambda b: 2_000)
    try:
        first = runner.frontend_result("compress", BASELINE)
        second = runner.frontend_result("compress", BASELINE)
        assert first is second  # cached object identity

        oracle_a = runner.get_oracle("compress", 5_000)
        oracle_b = runner.get_oracle("compress", 5_000)
        assert oracle_a is oracle_b

        program_a = runner.get_program("compress")
        program_b = runner.get_program("compress")
        assert program_a is program_b

        machine_first = runner.machine_result("compress", MachineConfig(frontend=BASELINE))
        machine_second = runner.machine_result("compress", MachineConfig(frontend=BASELINE))
        assert machine_first is machine_second
        assert machine_first.retired == 2_000
    finally:
        runner.clear_caches()


def test_quick_scale_env(monkeypatch):
    import repro.experiments.runner as runner
    monkeypatch.delenv("REPRO_QUICK", raising=False)
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert runner.quick_scale() == 1.0
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert runner.quick_scale() == 0.25
    monkeypatch.delenv("REPRO_QUICK")
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert runner.quick_scale() == 0.5
    monkeypatch.setenv("REPRO_SCALE", "garbage")
    with pytest.warns(RuntimeWarning, match="invalid REPRO_SCALE"):
        assert runner.quick_scale() == 1.0


def test_default_lengths_floor(monkeypatch):
    import repro.experiments.runner as runner
    monkeypatch.setenv("REPRO_SCALE", "0.0001")
    assert runner.default_length("compress") >= 5_000
    assert runner.machine_length("compress") >= 5_000


def test_machine_warmup_can_be_disabled(monkeypatch):
    import repro.experiments.runner as runner
    runner.clear_caches()
    monkeypatch.setattr(runner, "default_length", lambda b: 4_000)
    try:
        cold = runner.machine_result("compress", MachineConfig(frontend=BASELINE),
                                     n=2_000, warmup=False)
        assert cold.retired == 2_000
    finally:
        runner.clear_caches()
