"""Set-associative cache and memory hierarchy."""

import pytest

from repro.mem import MemoryConfig, MemoryHierarchy, SetAssocCache


def make_cache(size=1024, assoc=2, line=32):
    return SetAssocCache(size, assoc, line)


def test_cold_miss_then_hit():
    cache = make_cache()
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.stats.misses == 1 and cache.stats.hits == 1


def test_same_line_hits():
    cache = make_cache(line=32)
    cache.access(0)
    assert cache.access(31)
    assert not cache.access(32)


def test_lru_eviction_order():
    cache = SetAssocCache(2 * 32 * 2, assoc=2, line_bytes=32)  # 2 sets, 2 ways
    set_stride = 2 * 32  # addresses mapping to set 0
    a, b, c = 0, set_stride, 2 * set_stride
    cache.access(a)
    cache.access(b)
    cache.access(a)      # a is now most recent
    cache.access(c)      # evicts b (LRU)
    assert cache.probe(a)
    assert not cache.probe(b)
    assert cache.probe(c)


def test_probe_has_no_side_effects():
    cache = make_cache()
    assert not cache.probe(0)
    assert cache.stats.accesses == 0
    assert not cache.access(0)


def test_invalidate():
    cache = make_cache()
    cache.access(0)
    assert cache.invalidate(0)
    assert not cache.probe(0)
    assert not cache.invalidate(0)


def test_touch_allocates_without_stats():
    cache = make_cache()
    cache.touch(0)
    assert cache.probe(0)
    assert cache.stats.accesses == 0


def test_flush():
    cache = make_cache()
    cache.access(0)
    cache.access(64)
    cache.flush()
    assert cache.resident_lines() == 0


def test_capacity():
    cache = SetAssocCache(4 * 32, assoc=4, line_bytes=32)  # 1 set, 4 ways
    for i in range(4):
        cache.access(i * 32)
    assert cache.resident_lines() == 4
    cache.access(4 * 32)  # evicts line 0
    assert not cache.probe(0)
    assert cache.resident_lines() == 4


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        SetAssocCache(1000, assoc=2, line_bytes=33)  # line not a power of 2
    with pytest.raises(ValueError):
        SetAssocCache(1000, assoc=3, line_bytes=32)  # size not divisible


def test_miss_rate():
    cache = make_cache()
    cache.access(0)
    cache.access(0)
    assert cache.stats.miss_rate == pytest.approx(0.5)


# --- hierarchy ------------------------------------------------------------------

def test_inst_latencies_follow_the_paper():
    hierarchy = MemoryHierarchy()
    cold = hierarchy.inst_line_latency(0)
    assert cold == hierarchy.config.memory_latency == 50
    l2 = MemoryHierarchy()
    l2.l2.touch(0)
    assert l2.inst_line_latency(0) == l2.config.l2_latency == 6
    warm = hierarchy.inst_line_latency(0)
    assert warm == hierarchy.config.l1i_hit_latency == 1


def test_data_latencies():
    hierarchy = MemoryHierarchy()
    assert hierarchy.data_latency(0) == 50      # cold
    assert hierarchy.data_latency(0) == hierarchy.config.l1d_hit_latency
    assert hierarchy.data_latency(1) == hierarchy.config.l1d_hit_latency  # same line


def test_unified_l2_shared_between_inst_and_data():
    hierarchy = MemoryHierarchy()
    before = hierarchy.l2.stats.accesses
    hierarchy.inst_line_latency(0)
    hierarchy.data_latency(0)
    assert hierarchy.l2.stats.accesses == before + 2


def test_inst_and_data_do_not_alias_in_l2():
    hierarchy = MemoryHierarchy()
    hierarchy.inst_line_latency(0)
    # data word 0 must still miss in L2 (disjoint address spaces)
    assert hierarchy.data_latency(0) == hierarchy.config.memory_latency


def test_paper_configuration_sizes():
    config = MemoryConfig()
    assert config.l1i_bytes == 4 * 1024
    assert config.l1d_bytes == 64 * 1024
    assert config.l2_bytes == 1024 * 1024
    assert config.l2_latency == 6
    assert config.memory_latency == 50


def test_inst_line_hit_probe():
    hierarchy = MemoryHierarchy()
    assert not hierarchy.inst_line_hit(0)
    hierarchy.inst_line_latency(0)
    assert hierarchy.inst_line_hit(0)
