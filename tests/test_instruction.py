"""Instruction record: dataflow queries, validation, disassembly."""

import pytest

from repro.isa.instruction import Instruction, NUM_REGS, REG_LINK
from repro.isa.opcodes import Opcode


def inst(op, **kwargs):
    return Instruction(addr=kwargs.pop("addr", 0), op=op, **kwargs)


def test_reg3_dataflow():
    i = inst(Opcode.ADD, rd=3, rs1=1, rs2=2)
    assert i.src_regs() == (1, 2)
    assert i.dest_reg() == 3


def test_zero_register_excluded_from_sources():
    i = inst(Opcode.ADD, rd=3, rs1=0, rs2=2)
    assert i.src_regs() == (2,)


def test_write_to_r0_is_discarded():
    i = inst(Opcode.ADD, rd=0, rs1=1, rs2=2)
    assert i.dest_reg() is None


def test_imm_dataflow():
    i = inst(Opcode.ADDI, rd=4, rs1=7, imm=10)
    assert i.src_regs() == (7,)
    assert i.dest_reg() == 4


def test_load_dataflow():
    i = inst(Opcode.LD, rd=5, rs1=6, imm=8)
    assert i.src_regs() == (6,)
    assert i.dest_reg() == 5


def test_store_reads_base_and_data():
    i = inst(Opcode.ST, rs1=6, rs2=7, imm=8)
    assert set(i.src_regs()) == {6, 7}
    assert i.dest_reg() is None


def test_branch_reads_both_operands():
    i = inst(Opcode.BNE, rs1=1, rs2=2, target=10)
    assert i.src_regs() == (1, 2)
    assert i.dest_reg() is None


def test_call_writes_link_register():
    i = inst(Opcode.CALL, target=50)
    assert i.dest_reg() == REG_LINK
    assert i.src_regs() == ()


def test_ret_reads_link_register():
    i = inst(Opcode.RET)
    assert i.src_regs() == (REG_LINK,)


def test_jr_reads_its_register():
    i = inst(Opcode.JR, rs1=9)
    assert i.src_regs() == (9,)


def test_lui_has_no_sources():
    i = inst(Opcode.LUI, rd=2, imm=5)
    assert i.src_regs() == ()
    assert i.dest_reg() == 2


def test_fall_through():
    i = inst(Opcode.NOP, addr=41)
    assert i.fall_through == 42


def test_register_range_validated():
    with pytest.raises(ValueError):
        Instruction(addr=0, op=Opcode.ADD, rd=NUM_REGS, rs1=0, rs2=0)
    with pytest.raises(ValueError):
        Instruction(addr=0, op=Opcode.ADD, rd=1, rs1=-1, rs2=0)


def test_direct_control_requires_target():
    with pytest.raises(ValueError):
        Instruction(addr=0, op=Opcode.BEQ, rs1=1, rs2=2)
    with pytest.raises(ValueError):
        Instruction(addr=0, op=Opcode.JMP)


def test_indirect_control_needs_no_target():
    Instruction(addr=0, op=Opcode.JR, rs1=1)
    Instruction(addr=0, op=Opcode.RET)


def test_instruction_is_immutable():
    i = inst(Opcode.ADD, rd=1, rs1=2, rs2=3)
    with pytest.raises(Exception):
        i.rd = 5


@pytest.mark.parametrize("op,kwargs,text", [
    (Opcode.ADD, dict(rd=1, rs1=2, rs2=3), "ADD r1, r2, r3"),
    (Opcode.ADDI, dict(rd=1, rs1=2, imm=-4), "ADDI r1, r2, -4"),
    (Opcode.LD, dict(rd=1, rs1=2, imm=8), "LD r1, 8(r2)"),
    (Opcode.ST, dict(rs1=2, rs2=1, imm=8), "ST r1, 8(r2)"),
    (Opcode.BNE, dict(rs1=1, rs2=0, target=7), "BNE r1, r0, 7"),
    (Opcode.JMP, dict(target=9), "JMP 9"),
    (Opcode.JR, dict(rs1=3), "JR r3"),
    (Opcode.RET, dict(), "RET"),
    (Opcode.HALT, dict(), "HALT"),
])
def test_disassembly(op, kwargs, text):
    assert inst(op, **kwargs).disassemble() == text


def test_str_includes_address():
    assert str(inst(Opcode.NOP, addr=12)).startswith("    12:")
