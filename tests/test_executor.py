"""Functional execution semantics, opcode by opcode."""

import pytest

from repro.isa import assemble, FunctionalExecutor
from repro.isa.executor import STACK_BASE, ExecState, step_instruction
from repro.isa.instruction import Instruction, NUM_REGS, REG_LINK, REG_SP
from repro.isa.opcodes import Opcode


def run(source, max_instructions=10_000):
    executor = FunctionalExecutor(assemble(source), max_instructions=max_instructions)
    executor.run_to_completion()
    return executor.state


def step(op, regs=None, **kwargs):
    regs = regs if regs is not None else [0] * NUM_REGS
    memory = kwargs.pop("memory", {})
    inst = Instruction(addr=kwargs.pop("addr", 0), op=op, **kwargs)
    result = step_instruction(inst, regs, memory.get if not isinstance(memory, dict)
                              else (lambda a: memory.get(a, 0)),
                              lambda a, v: memory.__setitem__(a, v))
    return result, regs, memory


# --- ALU -----------------------------------------------------------------

@pytest.mark.parametrize("op,a,b,expected", [
    (Opcode.ADD, 3, 4, 7),
    (Opcode.SUB, 10, 4, 6),
    (Opcode.AND, 0b1100, 0b1010, 0b1000),
    (Opcode.OR, 0b1100, 0b1010, 0b1110),
    (Opcode.XOR, 0b1100, 0b1010, 0b0110),
    (Opcode.SHL, 3, 4, 48),
    (Opcode.SHR, 48, 4, 3),
    (Opcode.MUL, 7, 6, 42),
    (Opcode.SLT, 3, 4, 1),
    (Opcode.SLT, 4, 3, 0),
])
def test_reg3_semantics(op, a, b, expected):
    regs = [0] * NUM_REGS
    regs[1], regs[2] = a, b
    _result, regs, _mem = step(op, regs=regs, rd=3, rs1=1, rs2=2)
    assert regs[3] == expected


def test_sub_wraps_to_unsigned():
    regs = [0] * NUM_REGS
    regs[1], regs[2] = 1, 2
    _r, regs, _m = step(Opcode.SUB, regs=regs, rd=3, rs1=1, rs2=2)
    assert regs[3] == (1 << 64) - 1


def test_slt_is_signed():
    regs = [0] * NUM_REGS
    regs[1] = (1 << 64) - 1  # -1 as two's complement
    regs[2] = 1
    _r, regs, _m = step(Opcode.SLT, regs=regs, rd=3, rs1=1, rs2=2)
    assert regs[3] == 1


@pytest.mark.parametrize("op,a,imm,expected", [
    (Opcode.ADDI, 3, 4, 7),
    (Opcode.ADDI, 3, -4, (1 << 64) - 1),
    (Opcode.ANDI, 0b1100, 0b1010, 0b1000),
    (Opcode.ORI, 0b1100, 0b0011, 0b1111),
    (Opcode.XORI, 0b1100, 0b1010, 0b0110),
    (Opcode.SLTI, 3, 4, 1),
    (Opcode.SLTI, 5, 4, 0),
])
def test_imm_semantics(op, a, imm, expected):
    regs = [0] * NUM_REGS
    regs[1] = a
    _r, regs, _m = step(op, regs=regs, rd=3, rs1=1, imm=imm)
    assert regs[3] == expected


def test_lui():
    _r, regs, _m = step(Opcode.LUI, rd=3, imm=5)
    assert regs[3] == 5 << 16


def test_writes_to_r0_ignored():
    regs = [0] * NUM_REGS
    regs[1] = 5
    _r, regs, _m = step(Opcode.ADD, regs=regs, rd=0, rs1=1, rs2=1)
    assert regs[0] == 0


# --- memory ---------------------------------------------------------------

def test_load_and_store():
    regs = [0] * NUM_REGS
    regs[1] = 100
    memory = {108: 77}
    result, regs, memory = step(Opcode.LD, regs=regs, rd=3, rs1=1, imm=8, memory=memory)
    assert regs[3] == 77 and result.mem_addr == 108

    regs[4] = 55
    result, regs, memory = step(Opcode.ST, regs=regs, rs1=1, rs2=4, imm=9, memory=memory)
    assert memory[109] == 55 and result.mem_addr == 109 and result.value == 55


def test_uninitialized_memory_reads_zero():
    _r, regs, _m = step(Opcode.LD, rd=3, rs1=1, imm=123)
    assert regs[3] == 0


# --- control -------------------------------------------------------------

@pytest.mark.parametrize("op,a,b,taken", [
    (Opcode.BEQ, 5, 5, True), (Opcode.BEQ, 5, 6, False),
    (Opcode.BNE, 5, 6, True), (Opcode.BNE, 5, 5, False),
    (Opcode.BLT, 4, 5, True), (Opcode.BLT, 5, 4, False), (Opcode.BLT, 5, 5, False),
    (Opcode.BGE, 5, 5, True), (Opcode.BGE, 4, 5, False),
])
def test_branch_conditions(op, a, b, taken):
    regs = [0] * NUM_REGS
    regs[1], regs[2] = a, b
    result, _regs, _m = step(op, regs=regs, rs1=1, rs2=2, target=50, addr=10)
    assert result.taken is taken
    assert result.next_pc == (50 if taken else 11)


def test_blt_signed_comparison():
    regs = [0] * NUM_REGS
    regs[1] = (1 << 64) - 5  # -5
    regs[2] = 3
    result, _regs, _m = step(Opcode.BLT, regs=regs, rs1=1, rs2=2, target=50)
    assert result.taken is True


def test_jmp():
    result, _regs, _m = step(Opcode.JMP, target=99, addr=10)
    assert result.next_pc == 99 and result.taken is None


def test_call_links_and_jumps():
    result, regs, _m = step(Opcode.CALL, target=99, addr=10)
    assert result.next_pc == 99
    assert regs[REG_LINK] == 11


def test_ret_jumps_to_link():
    regs = [0] * NUM_REGS
    regs[REG_LINK] = 77
    result, _regs, _m = step(Opcode.RET, regs=regs, addr=10)
    assert result.next_pc == 77


def test_jr_jumps_through_register():
    regs = [0] * NUM_REGS
    regs[4] = 33
    result, _regs, _m = step(Opcode.JR, regs=regs, rs1=4, addr=10)
    assert result.next_pc == 33


def test_trap_and_nop_fall_through():
    for op in (Opcode.TRAP, Opcode.NOP):
        result, _regs, _m = step(op, addr=10)
        assert result.next_pc == 11


def test_halt():
    result, _regs, _m = step(Opcode.HALT, addr=10)
    assert result.halted


# --- whole-program execution -----------------------------------------------

def test_loop_program_sums(loop_program):
    executor = FunctionalExecutor(loop_program)
    executor.run_to_completion()
    # sum 20..1 == 210
    assert executor.state.regs[4] == 210
    assert executor.state.memory[loop_program.data_symbols["arr"] + 2] == 210
    assert executor.state.regs[5] == 42


def test_branchy_program_counts(branchy_program):
    executor = FunctionalExecutor(branchy_program)
    executor.run_to_completion()
    # 40 iterations over flags with 7/8 ones => 35 increments
    assert executor.state.regs[20] == 35


def test_switch_program_dispatch(switch_program):
    executor = FunctionalExecutor(switch_program)
    executor.run_to_completion()
    # 24 iterations over the case pattern [0 1 2 0 1 0 0 2]
    assert executor.state.regs[20] == 12  # case0 appears 4x per period of 8
    assert executor.state.regs[21] == 6
    assert executor.state.regs[22] == 6


def test_max_instructions_cap():
    executor = FunctionalExecutor(assemble("main: JMP main"), max_instructions=100)
    assert executor.run_to_completion() == 100
    assert executor.state.halted


def test_initial_state():
    state = ExecState.for_program(assemble("main: HALT"))
    assert state.regs[REG_SP] == STACK_BASE
    assert state.pc == 0 and not state.halted


def test_stream_yields_sequence(loop_program):
    executor = FunctionalExecutor(loop_program, max_instructions=10)
    stream = list(executor.run())
    assert len(stream) == 10
    assert [d.seq for d in stream] == list(range(10))
    assert stream[0].inst.addr == loop_program.entry


def test_running_off_image_halts():
    program = assemble("main: NOP")  # no HALT
    executor = FunctionalExecutor(program)
    assert executor.run_to_completion() == 1
    assert executor.state.halted
