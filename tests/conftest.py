"""Shared fixtures: small hand-assembled programs and common setups."""

import pytest

from repro.isa import assemble


@pytest.fixture(autouse=True)
def _fresh_warn_once_state():
    """Reset the one-shot warning registry between tests.

    Warn-once guards (invalid ``REPRO_SCALE`` / ``REPRO_JOBS``) keep
    process-global state; without a reset, whichever test triggers a
    warning first would silently swallow it for every later
    ``pytest.warns`` assertion.
    """
    from repro.experiments import warnonce

    warnonce.reset()
    yield
    warnonce.reset()


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    """Point the persistent result cache at a per-session temp directory.

    Tests must never read results a previous run left in the user's real
    ``~/.cache/repro`` (a stale hit would mask a behaviour change the
    test suite should catch), nor pollute it with tiny test-length runs.
    """
    import os

    cache_dir = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


LOOP_SOURCE = """
        .data
arr:    .words 5 0 0 1 0
        .text
main:   ADDI r1, r0, 20
        ADDI r20, r0, arr
loop:   LD r3, 1(r20)
        ADD r4, r4, r1
        CALL fn
        ST r4, 2(r20)
        ADDI r1, r1, -1
        BNE r1, r0, loop
        TRAP
        HALT
fn:     ADDI r5, r0, 42
        RET
"""

BRANCHY_SOURCE = """
        .data
flags:  .words 1 1 1 0 1 1 1 1
        .text
main:   ADDI r10, r0, 40
        ADDI r11, r0, 0
loop:   ANDI r1, r11, 7
        LD r2, flags(r1)
        BEQ r2, r0, skip
        ADD r20, r20, r2
        ADD r21, r21, r2
skip:   ADDI r11, r11, 1
        ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""

SWITCH_SOURCE = """
        .data
cases:  .words 0 1 2 0 1 0 0 2
table:  .words 0 0 0
        .text
main:   ADDI r13, r0, table
        ADDI r12, r0, case0
        ST r12, 0(r13)
        ADDI r12, r0, case1
        ST r12, 1(r13)
        ADDI r12, r0, case2
        ST r12, 2(r13)
        ADDI r10, r0, 24
loop:   ANDI r1, r10, 7
        LD r2, cases(r1)
        LD r3, table(r2)
        JR r3
case0:  ADDI r20, r20, 1
        JMP merge
case1:  ADDI r21, r21, 1
        JMP merge
case2:  ADDI r22, r22, 1
        JMP merge
merge:  ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""


@pytest.fixture
def loop_program():
    return assemble(LOOP_SOURCE, name="loop")


@pytest.fixture
def branchy_program():
    return assemble(BRANCHY_SOURCE, name="branchy")


@pytest.fixture
def switch_program():
    return assemble(SWITCH_SOURCE, name="switch")
