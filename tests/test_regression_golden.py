"""Golden-value regression tests.

Every simulation in this repository is deterministic (seeded workloads,
no wall-clock or unseeded randomness), so exact values are stable across
runs and act as a tripwire for unintended behavioural changes.  If a test
here fails after an *intentional* model change, re-baseline the constants
and note the change in EXPERIMENTS.md.
"""

import pytest

from repro import BASELINE, PROMOTION, FrontEndSimulator, generate_program
from repro.config import MachineConfig
from repro.core.machine import Machine
from repro.isa import FunctionalExecutor
from repro.workloads import characterize


@pytest.fixture(scope="module")
def compress():
    return generate_program("compress")


def test_generated_program_is_stable(compress):
    assert len(compress) == 1067
    # First instruction of main and the data image are pinned.
    assert compress.instructions[compress.entry].disassemble() == \
        "ADDI r30, r0, 16777216"
    assert compress.data_symbols["work"] == 0


def test_functional_execution_golden(compress):
    executor = FunctionalExecutor(compress, max_instructions=10_000)
    assert executor.run_to_completion() == 10_000
    # The architectural register file after exactly 10k instructions.
    assert executor.state.pc == compress.instructions[executor.state.pc].addr
    assert executor.state.regs[17] > 0  # the global step counter advanced


def test_workload_statistics_golden(compress):
    stats = characterize(compress, max_instructions=20_000)
    assert stats.cond_branches == 1867
    assert stats.taken_branches == 842
    assert stats.loads == 3287
    assert stats.stores == 791


def test_frontend_golden(compress):
    result = FrontEndSimulator(compress, BASELINE, max_instructions=20_000).run()
    stats = result.stats
    assert result.instructions_retired == 20_000
    assert stats.fetches == 1700
    assert result.effective_fetch_rate == pytest.approx(20_000 / 1700)
    assert stats.cond_mispredicts == 336


def test_promotion_golden(compress):
    result = FrontEndSimulator(compress, PROMOTION, max_instructions=20_000).run()
    assert result.promotions == 6
    assert result.stats.promoted_branches == 584


def test_machine_golden(compress):
    result = Machine(compress, MachineConfig(frontend=BASELINE),
                     max_instructions=10_000).run()
    assert result.retired == 10_000
    assert result.cycles == 6878
    assert result.cond_mispredicts == 324
