"""The divergence guard: lockstep validation, invariants, graceful fallback.

The acceptance bar has three parts.  *Soundness*: lockstep validation
over real configurations reports zero divergences (the fast stack really
does match the frozen reference), including through mid-stream
snapshot/restore round trips.  *Sensitivity*: an artificially perturbed
fast engine yields a divergence report on disk, replayable via the CLI.
*Graceful fallback*: a grid containing a diverging point completes with
the point recomputed on the reference engine, surfacing the divergence
in the end-of-run table instead of raising.
"""

import importlib.util
import json
import sys
import warnings
from pathlib import Path

import pytest

from repro import config as cfg
from repro import validate
from repro.config import BASELINE, PROMOTION
from repro.experiments import env, runner, scheduler, warnonce
from repro.experiments.cachekey import canonical_json
from repro.experiments.checkpoint import Journal
from repro.experiments.scheduler import GridPoint, run_grid
from repro.experiments.serialize import frontend_result_to_dict
from repro.frontend.build import build_engine, reset_compiled_state
from repro.frontend.simulator import FrontEndSimulator
from repro.validate import errors
from repro.validate.digests import engine_digest, fetch_signature
from repro.validate.lockstep import (
    lockstep_frontend,
    lockstep_machine,
    lockstep_parity_cases,
)
from repro.validate.report import load_report, replay_report

N = 6_000

_KNOBS = ("REPRO_VALIDATE", "REPRO_FAULTS", "REPRO_JOBS", "REPRO_RETRIES",
          "REPRO_KEEP_GOING", "REPRO_RESUME", "REPRO_FAST_FRONTEND")


@pytest.fixture(autouse=True)
def fresh_state(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for knob in _KNOBS:
        monkeypatch.delenv(knob, raising=False)
    monkeypatch.setenv("REPRO_BACKOFF", "0.01")
    errors.arm_forced_divergence(0)
    runner.clear_caches()
    scheduler.take_divergences()
    yield
    errors.arm_forced_divergence(0)
    runner.clear_caches()
    scheduler.take_divergences()


# --- env knob parsing --------------------------------------------------------


def test_env_getters(monkeypatch):
    monkeypatch.setenv("X_STR", "abc")
    assert env.get_str("X_STR", "d") == "abc"
    assert env.get_str("X_UNSET", "d") == "d"
    assert env.get_raw("X_UNSET") is None
    monkeypatch.setenv("X_FLAG", "0")
    assert env.get_flag("X_FLAG", True) is False
    monkeypatch.setenv("X_FLAG", "")
    assert env.get_flag("X_FLAG", True) is False
    monkeypatch.setenv("X_FLAG", "1")
    assert env.get_flag("X_FLAG", False) is True
    assert env.get_flag("X_UNSET", True) is True
    monkeypatch.setenv("X_INT", "7")
    assert env.get_int("X_INT", 1) == 7
    monkeypatch.setenv("X_FLOAT", "2.5")
    assert env.get_float("X_FLOAT", 1.0) == 2.5
    assert env.get_int("X_UNSET", 3) == 3


def test_env_invalid_warns_once(monkeypatch):
    warnonce.reset()
    monkeypatch.setenv("X_BAD_INT", "nope")
    with pytest.warns(RuntimeWarning, match="X_BAD_INT"):
        assert env.get_int("X_BAD_INT", 5) == 5
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert env.get_int("X_BAD_INT", 5) == 5  # second read: silent


def test_parse_mode():
    assert validate.parse_mode(None) == ("off", 1)
    assert validate.parse_mode("0") == ("off", 1)
    assert validate.parse_mode("off") == ("off", 1)
    assert validate.parse_mode("lockstep") == ("lockstep", 1)
    assert validate.parse_mode("1") == ("lockstep", 1)
    assert validate.parse_mode("sample") == \
        ("sample", validate.DEFAULT_SAMPLE_STRIDE)
    assert validate.parse_mode("sample:10") == ("sample", 10)
    warnonce.reset()
    with pytest.warns(RuntimeWarning, match="REPRO_VALIDATE"):
        assert validate.parse_mode("bogus") == ("off", 1)


def test_armed_follows_env(monkeypatch):
    assert not validate.armed()
    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    assert validate.armed()
    assert validate.invariants_armed()
    monkeypatch.setenv("REPRO_VALIDATE", "sample:8")
    assert validate.sample_stride() == 8


# --- lockstep soundness ------------------------------------------------------


def test_lockstep_frontend_clean(monkeypatch):
    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    result = lockstep_frontend("compress", cfg.PROMOTION_PACKING, N)
    assert result.instructions_retired > 0


def test_lockstep_sample_mode_clean(monkeypatch):
    monkeypatch.setenv("REPRO_VALIDATE", "sample:16")
    result = lockstep_frontend("compress", BASELINE, N, stride=16, offset=3)
    assert result.instructions_retired > 0


def test_lockstep_parity_cases_clean(monkeypatch):
    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    cases = [("compress", BASELINE), ("go", cfg.PROMOTION_COST_REG)]
    assert lockstep_parity_cases(cases, N) == []


def test_lockstep_machine_clean(monkeypatch):
    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    result = lockstep_machine("compress", cfg.MachineConfig(), 3_000,
                              warmup=False)
    assert result.retired == 3_000


def test_snapshot_restore_midstream_no_false_positives(monkeypatch):
    """Mid-stream snapshot -> restore -> lockstep continues cleanly.

    With validation armed (instance invariants bound at construction),
    both engines are probed in lockstep with snapshot/restore round
    trips interleaved; every post-restore fetch signature and the final
    engine digests must still agree — restore must not trip the guard.
    """
    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    program = runner.get_program("compress")
    oracle = runner.get_oracle("compress", N)
    fast = build_engine(program, PROMOTION, fast=True)
    ref = build_engine(program, PROMOTION, fast=False)
    FrontEndSimulator(program, PROMOTION, oracle=oracle, engine=fast).run()
    FrontEndSimulator(program, PROMOTION, oracle=oracle, engine=ref).run()

    import random
    rng = random.Random(2026)
    snap_fast = snap_ref = None
    for i in range(300):
        pc = oracle[rng.randrange(len(oracle))][0].addr
        if i % 23 == 0:
            snap_fast, snap_ref = fast.snapshot(), ref.snapshot()
            assert snap_fast == snap_ref
        assert fetch_signature(pc, fast.fetch(pc)) == \
            fetch_signature(pc, ref.fetch(pc))
        if i % 23 == 11:
            fast.restore(snap_fast)
            ref.restore(snap_ref)
    assert engine_digest(fast) == engine_digest(ref)


# --- sensitivity: injected divergences --------------------------------------


def test_injected_divergence_writes_replayable_report(tmp_path):
    errors.arm_forced_divergence()
    with pytest.raises(errors.DivergenceError) as excinfo:
        lockstep_frontend("compress", BASELINE, N)
    exc = excinfo.value
    assert exc.injected
    assert exc.report_path is not None
    report = load_report(exc.report_path)
    assert report["benchmark"] == "compress"
    assert report["kind"] == "frontend"
    assert report["repro_n"] <= N
    # The perturbation was transient, so the replay comes back clean.
    assert replay_report(exc.report_path) is None


def test_divergence_error_survives_pickling():
    import pickle
    exc = errors.DivergenceError("boom", 17, "/tmp/r.json", True)
    clone = pickle.loads(pickle.dumps(exc))
    assert clone.message == "boom"
    assert clone.fetch_index == 17
    assert clone.report_path == "/tmp/r.json"
    assert clone.injected


# --- graceful fallback: grids complete on the reference engine ---------------


def _grid():
    return [GridPoint("frontend", b, c, N)
            for b in ("compress", "m88ksim")
            for c in (BASELINE, cfg.PROMOTION_PACKING)]


def _dicts(results):
    return {point: canonical_json(frontend_result_to_dict(result))
            for point, result in results.items()}


def test_grid_diverted_point_completes_serial(monkeypatch):
    """A divergence in a serial grid requeues the point on the reference
    engine and the grid completes; the divergence shows up in the
    drainable log, not as a raised failure."""
    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    errors.arm_forced_divergence()
    with pytest.warns(RuntimeWarning, match="diverged from the reference"):
        results = run_grid(_grid(), jobs=1)
    assert len(results) == len(_grid())
    divergences = scheduler.take_divergences()
    assert [f.kind for f in divergences] == ["divergence"]
    assert divergences[0].point.benchmark == "compress"
    assert scheduler.take_divergences() == []  # drained
    report_dir = Path(env.get_str("REPRO_CACHE_DIR")) / "divergences"
    assert list(report_dir.glob("div-*.json"))


def test_grid_divergence_matches_clean_reference_run(tmp_path, monkeypatch):
    """Acceptance: a perturbed grid is byte-identical to a clean
    reference-engine run of the same grid."""
    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    monkeypatch.setenv("REPRO_FAULTS", "diverge:p0")
    with pytest.warns(RuntimeWarning, match="diverged from the reference"):
        perturbed = _dicts(run_grid(_grid(), jobs=2))
    assert len(scheduler.take_divergences()) == 1

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"))
    monkeypatch.delenv("REPRO_VALIDATE")
    monkeypatch.delenv("REPRO_FAULTS")
    monkeypatch.setenv("REPRO_FAST_FRONTEND", "0")
    runner.clear_caches()
    clean = _dicts(run_grid(_grid(), jobs=1))
    assert perturbed == clean


def test_pinned_rerun_discards_stale_latch(monkeypatch):
    """A pinned reference re-run must drop a leftover forced latch so it
    cannot leak into a later validated point."""
    errors.arm_forced_divergence()
    result = runner.frontend_result("compress", BASELINE, N,
                                    engine="reference")
    assert result.instructions_retired > 0
    assert not errors.forced_pending()


# --- checkpoint journal: torn trailing line ----------------------------------


def test_journal_tolerates_torn_final_line(tmp_path):
    keys = ("k1", "k2")
    journal = Journal(keys)
    journal.record("k1", "frontend", {"x": 1})
    journal.record("k2", "frontend", {"x": 2})
    journal.close()
    # Simulate a SIGKILL mid-write: append a partial, non-JSON fragment.
    with open(journal.path, "a") as handle:
        handle.write('{"v": 3, "key": "k2", "pay')
    warnonce.reset()
    with pytest.warns(RuntimeWarning, match="torn partial line"):
        entries = Journal(keys).load()
    assert set(entries) == {"k1", "k2"}
    assert entries["k1"] == ("frontend", {"x": 1})
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        Journal(keys).load()  # warned once, second load silent


def test_journal_complete_final_line_loads_silently(tmp_path):
    journal = Journal(("k1",))
    journal.record("k1", "frontend", {"x": 1})
    journal.close()
    # Strip the trailing newline: the last line is complete JSON but
    # unterminated — it must load, without a torn-line warning.
    text = journal.path.read_text().rstrip("\n")
    journal.path.write_text(text)
    warnonce.reset()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        entries = Journal(("k1",)).load()
    assert entries["k1"] == ("frontend", {"x": 1})


# --- clear_caches drops compiled state ---------------------------------------


def test_clear_caches_resets_compiled_engine_state():
    program = runner.get_program("compress")
    engine = build_engine(program, PROMOTION, fast=True)
    FrontEndSimulator(program, PROMOTION,
                      oracle=runner.get_oracle("compress", N),
                      engine=engine).run()
    warmed = [segment for row in engine.trace_cache._sets for segment in row
              if segment._variants is not None or segment._fetch_plan is not None]
    assert warmed, "run should have compiled at least one segment plan"
    assert engine.fill_unit._segment_memo or engine._block_cache

    runner.clear_caches()  # lazily calls reset_compiled_state()

    for row in engine.trace_cache._sets:
        for segment in row:
            assert segment._variants is None
            assert segment._fetch_plan is None
            assert segment._fetch_slots is None
    assert not engine.fill_unit._segment_memo
    assert not engine._block_cache
    assert not engine._cand_cache


def test_reset_compiled_state_keeps_results_identical():
    """Dropping compiled caches is purely an eviction: a rerun after the
    reset must reproduce the exact same serialized result."""
    first = runner.frontend_result("compress", PROMOTION, N)
    first_bytes = canonical_json(frontend_result_to_dict(first))
    runner.clear_caches()
    reset_compiled_state()
    second = runner.frontend_result("compress", PROMOTION, N)
    assert canonical_json(frontend_result_to_dict(second)) == first_bytes


# --- structural invariants ---------------------------------------------------


def test_bias_table_invariant_armed_and_fires(monkeypatch):
    from repro.trace.bias_table import BranchBiasTable
    table = BranchBiasTable(entries=16, threshold=2)
    assert "update_fast" not in table.__dict__  # off: bare class method

    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    armed = BranchBiasTable(entries=16, threshold=2)
    assert "update_fast" in armed.__dict__
    for _ in range(3):
        armed.update_fast(0x40, True)  # promotes cleanly, no raise
    assert armed.is_promoted(0x40)
    # Force an inconsistent True return: the invariant must fire.
    monkeypatch.setattr(BranchBiasTable, "update_fast",
                        lambda self, pc, taken: True)
    with pytest.raises(errors.InvariantError, match="promoted branch"):
        armed.update_fast(0x999, True)


def test_ras_snapshot_invariant_armed_and_fires(monkeypatch):
    from repro.branch.ras import IdealReturnAddressStack
    ras = IdealReturnAddressStack()
    assert "snapshot" not in ras.__dict__

    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    armed = IdealReturnAddressStack()
    armed.push(100)
    assert armed.snapshot() == (100,)
    armed.push(200)
    assert armed.snapshot() == (100, 200)  # clean use never raises
    # Corrupt the copy-on-write contract behind the API's back.
    armed._stack.append(300)
    with pytest.raises(errors.InvariantError, match="stale"):
        armed.snapshot()


def test_fill_unit_segment_validation_follows_mode(monkeypatch):
    from repro.trace.fill_unit import FillUnit, TraceCache
    from repro.mem.hierarchy import MemoryHierarchy

    def build():
        tc = TraceCache(n_lines=64, assoc=2)
        return FillUnit(tc)

    assert not build()._validate_segments
    monkeypatch.setenv("REPRO_VALIDATE", "sample")
    assert build()._validate_segments


def test_machine_core_invariants_clean(monkeypatch):
    """An armed machine run exercises checkpoint/store-queue invariants
    on every restore without tripping them."""
    monkeypatch.setenv("REPRO_VALIDATE", "lockstep")
    from repro.core.machine import Machine
    program = runner.get_program("compress")
    machine = Machine(program, cfg.MachineConfig(), max_instructions=2_000)
    assert machine._validate_state
    result = machine.run()
    assert result.retired == 2_000


# --- fuzzer smoke ------------------------------------------------------------


def _load_fuzzer():
    path = Path(__file__).parent.parent / "benchmarks" / "fuzz_frontend.py"
    spec = importlib.util.spec_from_file_location("fuzz_frontend", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_fuzzer_smoke():
    fuzz = _load_fuzzer()
    for seed in (0, 1, 2):
        fuzz.run_one(seed, length=2_500)


def test_fuzzer_main_reports_divergence(capsys):
    fuzz = _load_fuzzer()
    errors.arm_forced_divergence()
    # The latch makes the first case "diverge"; main must print the
    # reproducing seed and exit nonzero.
    assert fuzz.main(["--runs", "1", "--seed-base", "3",
                      "--length", "2500"]) == 1
    assert "seed 3" in capsys.readouterr().out


# --- CLI ---------------------------------------------------------------------


def test_cli_validate_replay_unreadable_report(tmp_path, capsys):
    from repro.__main__ import main
    missing = tmp_path / "nope.json"
    assert main(["validate-replay", str(missing)]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 999}))
    assert main(["validate-replay", str(bad)]) == 2


def test_cli_validate_replay_roundtrip(capsys):
    errors.arm_forced_divergence()
    with pytest.raises(errors.DivergenceError) as excinfo:
        lockstep_frontend("compress", BASELINE, N)
    from repro.__main__ import main
    assert main(["validate-replay", excinfo.value.report_path]) == 0
    assert "does not reproduce" in capsys.readouterr().out
