"""The worker fleet: leases, heartbeat failover, and event streaming.

The acceptance bar is the service suite's, extended to remote
execution: a grid computed by fleet workers must be byte-identical to a
clean serial run, no matter which worker dies mid-point — a lost
connection or a missed heartbeat revokes the lease, the point requeues
(on another worker, the pool, or inline), and a revoked-then-completed
duplicate is dropped as stale, never double-stored.  The event stream
must narrate all of it in order.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.config import BASELINE, PROMOTION
from repro.experiments import env, runner, scheduler
from repro.experiments.scheduler import GridPoint
from repro.experiments.serialize import frontend_result_to_dict
from repro.service import events as events_mod
from repro.service import fleet as fleet_mod
from repro.service.client import (ServiceClient, ServiceOverloaded,
                                  submit_with_retry)
from repro.service.fleet import Fleet, LeaseRevoked, RemotePointError
from repro.service.server import ServiceThread
from repro.service.worker import FleetWorker

N = 6_000

_KNOBS = ("REPRO_DISK_CACHE", "REPRO_TRACE_FILES", "REPRO_FAULTS",
          "REPRO_RETRIES", "REPRO_POINT_TIMEOUT", "REPRO_KEEP_GOING",
          "REPRO_RESUME", "REPRO_CHECKPOINTS", "REPRO_JOBS",
          "REPRO_VALIDATE", "REPRO_CACHE_MAX_MB", "REPRO_ADMIT_MAX",
          "REPRO_CLIENT_BACKLOG", "REPRO_DRAIN_GRACE",
          "REPRO_SERVICE_ADDR", "REPRO_LEASE_TTL", "REPRO_HEARTBEAT",
          "REPRO_FLEET_MIN")


@pytest.fixture(autouse=True)
def fresh_state(tmp_path, monkeypatch):
    """Every test: empty cache dir, no knobs, fast backoff."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for knob in _KNOBS:
        monkeypatch.delenv(knob, raising=False)
    monkeypatch.setenv("REPRO_BACKOFF", "0.01")
    runner.clear_caches()
    yield
    runner.clear_caches()


def _point(config=BASELINE, benchmark="compress", n=N):
    return GridPoint("frontend", benchmark, config, n).resolved()


def _result_json(result):
    return json.dumps(frontend_result_to_dict(result), sort_keys=True)


def _service(**kwargs):
    kwargs.setdefault("host", "127.0.0.1")
    kwargs.setdefault("port", 0)
    kwargs.setdefault("jobs", 1)
    thread = ServiceThread(**kwargs)
    thread.start()
    return thread


class _Worker:
    """An in-process FleetWorker on a thread, for integration tests."""

    def __init__(self, host, port, **kwargs):
        kwargs.setdefault("poll_window", 0.3)
        kwargs.setdefault("reconnect", False)
        self.worker = FleetWorker(host, port, **kwargs)
        self.thread = threading.Thread(target=self.worker.run, daemon=True)
        self.thread.start()

    def stop(self, timeout=30.0):
        self.worker.stop()
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.stop()


def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "timed out waiting"
        time.sleep(interval)


# --- client backoff (retry_after floor) --------------------------------------


def test_submit_with_retry_honors_retry_after_floor():
    """The server's retry_after hint is a floor on the jittered delay —
    a client must never re-arrive sooner than it was asked to wait."""

    class Rejecting:
        def __init__(self, failures):
            self.failures = failures
            self.calls = 0

        def submit(self, points, deadline=None, raw=False):
            self.calls += 1
            if self.calls <= self.failures:
                raise ServiceOverloaded("overloaded", 5.0)
            return ["ok"]

    delays = []
    fake = Rejecting(failures=3)
    result = submit_with_retry(fake, [], attempts=6, base=0.2, cap=30.0,
                               sleep=delays.append)
    assert result == ["ok"]
    assert len(delays) == 3
    for delay in delays:
        assert 5.0 <= delay <= 30.0

    # And the cap still wins when the hint exceeds it.
    delays.clear()
    fake_hint = ServiceOverloaded("overloaded", 120.0)

    class HighHint(Rejecting):
        def submit(self, points, deadline=None, raw=False):
            self.calls += 1
            if self.calls <= self.failures:
                raise fake_hint
            return ["ok"]

    submit_with_retry(HighHint(failures=1), [], attempts=3, cap=30.0,
                      sleep=delays.append)
    assert delays == [30.0]


def test_parse_hostport():
    default = ("127.0.0.1", 1234)
    assert env.parse_hostport("0.0.0.0:9000", default) == ("0.0.0.0", 9000)
    assert env.parse_hostport(":9100", default) == ("127.0.0.1", 9100)
    assert env.parse_hostport("9200", default) == ("127.0.0.1", 9200)
    with pytest.raises(ValueError):
        env.parse_hostport("host:notaport", default)
    with pytest.raises(ValueError):
        env.parse_hostport("host:70000", default)


# --- fleet unit (fake clock, no sockets) -------------------------------------


class _FakeConn:
    def __init__(self):
        self.alive = True
        self.sent = []

    async def send(self, message):
        self.sent.append(message)


class _Entry:
    def __init__(self, point):
        self.point = point
        self.key = scheduler.point_key(point)
        self.worker = None


def _run(coro):
    return asyncio.run(coro)


def test_lease_ttl_scales_with_point_cost():
    async def body():
        fleet = Fleet(lease_ttl=10.0, heartbeat=1.0)
        light = _Entry(_point(n=N))
        heavy = _Entry(GridPoint("machine", "compress", BASELINE,
                                 N).resolved())
        offer_light = fleet.offer(light, attempt=0, ordinal=0)
        offer_heavy = fleet.offer(heavy, attempt=0, ordinal=1)
        assert offer_light.ttl == 10.0 * scheduler.cost_scale(light.point)
        assert offer_heavy.ttl == 10.0 * scheduler.cost_scale(heavy.point)
        assert offer_heavy.ttl > offer_light.ttl
        fleet.cancel(offer_light)
        fleet.cancel(offer_heavy)

    _run(body())


def test_missed_heartbeat_expires_lease_and_requeues():
    """A worker that stops heartbeating loses its lease at the TTL; a
    renewing worker keeps it alive arbitrarily long."""

    async def body():
        clock = [0.0]
        fleet = Fleet(lease_ttl=10.0, heartbeat=1.0,
                      clock=lambda: clock[0])
        conn = _FakeConn()
        handle = fleet.register(conn, {"name": "w1", "host": "h",
                                       "pid": 1})
        entry = _Entry(_point())
        offer = fleet.offer(entry, attempt=0, ordinal=0)
        lease = await fleet.poll(handle, 0.1)
        assert lease is not None and lease.offer is offer

        # Renewals push the deadline out past the original TTL.
        for step in range(5):
            clock[0] += 8.0
            fleet.heartbeat(handle, [lease.lease_id])
            assert fleet.reap() == []

        # Silence for a full TTL: the reaper revokes and the offer's
        # future fails retryably.
        clock[0] += 10.1
        expired = fleet.reap()
        assert [l.lease_id for l in expired] == [lease.lease_id]
        with pytest.raises(LeaseRevoked):
            offer.future.result()
        assert fleet.requeued_total == 1
        assert handle.requeued == 1

        # The late completion from the not-actually-dead worker is
        # counted stale and dropped, never double-resolved.
        assert fleet.complete(handle, lease.lease_id, {"x": 1}) is False
        assert fleet.stale_completions == 1

    _run(body())


def test_disconnect_revokes_leases_and_empties_fleet():
    async def body():
        fleet = Fleet(lease_ttl=30.0, heartbeat=1.0)
        conn = _FakeConn()
        handle = fleet.register(conn, {"name": "w1", "host": "h",
                                       "pid": 1})
        assert fleet.available()
        offer = fleet.offer(_Entry(_point()), attempt=0, ordinal=0)
        lease = await fleet.poll(handle, 0.1)
        assert lease is not None
        queued = fleet.offer(_Entry(_point(PROMOTION)), attempt=0,
                             ordinal=1)
        fleet.disconnect(conn)
        assert not fleet.available()
        with pytest.raises(LeaseRevoked):
            offer.future.result()
        # The queued offer fails too: nobody is left to grant it to.
        with pytest.raises(LeaseRevoked):
            queued.future.result()

    _run(body())


def test_worker_reported_failure_kinds_route_through():
    async def body():
        fleet = Fleet(lease_ttl=30.0, heartbeat=1.0)
        conn = _FakeConn()
        handle = fleet.register(conn, {"name": "w1", "host": "h",
                                       "pid": 1})
        offer = fleet.offer(_Entry(_point()), attempt=0, ordinal=0)
        lease = await fleet.poll(handle, 0.1)
        assert fleet.fail(handle, lease.lease_id, "boom",
                          "deterministic") is True
        exc = offer.future.exception()
        assert isinstance(exc, RemotePointError)
        assert fleet_mod.failure_kind(exc) == "deterministic"
        assert fleet_mod.failure_kind(LeaseRevoked("gone")) == "transient"

    _run(body())


def test_drain_wakes_idle_polls_and_stops_leasing():
    async def body():
        fleet = Fleet(lease_ttl=30.0, heartbeat=1.0)
        conn = _FakeConn()
        handle = fleet.register(conn, {"name": "w1", "host": "h",
                                       "pid": 1})
        poll = asyncio.ensure_future(fleet.poll(handle, 30.0))
        await asyncio.sleep(0)  # let the poll park its waiter
        fleet.begin_drain()
        assert await asyncio.wait_for(poll, 1.0) is None
        assert fleet.draining and not fleet.available()

    _run(body())


def test_event_hub_orders_and_sheds_with_dropped_marker():
    async def body():
        hub = events_mod.EventHub()
        conn = _FakeConn()
        hub.subscribe(conn, "sub-1")
        # Emits are synchronous; the sender task has not run yet, so a
        # tiny queue demonstrates oldest-first shedding.
        sub = hub._subs[(id(conn), "sub-1")]
        sub.queue = asyncio.Queue(maxsize=2)
        hub.emit(events_mod.QUEUED, key="k1")
        hub.emit(events_mod.STARTED, key="k1")
        hub.emit(events_mod.COMPLETED, key="k1")
        await asyncio.sleep(0.05)  # sender drains
        data = [m["data"] for m in conn.sent]
        assert [d["event"] for d in data] == ["started", "completed"]
        assert data[-1]["dropped"] == 1
        seqs = [d["seq"] for d in data]
        assert seqs == sorted(seqs)
        assert hub.stats()["dropped_total"] == 1
        hub.unsubscribe(conn, "sub-1")
        assert hub.stats()["subscriptions"] == 0

    _run(body())


# --- end-to-end: in-process server + worker ----------------------------------


def test_worker_computes_point_byte_identical():
    """One remote worker serves a whole submission; the results match a
    clean in-process computation byte for byte, and status attributes
    the work to the worker."""
    service = _service(lease_ttl=10.0, heartbeat=0.5)
    host, port = service.service.host, service.service.port
    points = [_point(BASELINE), _point(PROMOTION)]
    try:
        with _Worker(host, port, name="w-int") as running:
            with ServiceClient(host, port, timeout=120) as client:
                _wait_for(lambda: len(client.status()["fleet"]["workers"])
                          == 1)
                results = client.submit(points)
                status = client.status()
        fleet = status["fleet"]
        assert fleet["completed_total"] == len(points)
        assert fleet["requeued_total"] == 0
        (member,) = fleet["workers"]
        assert member["worker"] == "w-int"
        assert member["completed"] == len(points)
        assert running.worker.completed == len(points)
    finally:
        service.stop()
    runner.clear_caches(disk=True)
    clean = [runner.frontend_result(p.benchmark, p.config, p.n)
             for p in points]
    assert [_result_json(r) for r in results] == \
        [_result_json(r) for r in clean]


def test_event_stream_orders_point_lifecycle():
    """A subscriber sees queued -> leased -> started -> completed for a
    fleet-computed point, with worker identity and increasing seqs."""
    service = _service(lease_ttl=10.0, heartbeat=0.5)
    host, port = service.service.host, service.service.port
    try:
        with _Worker(host, port, name="w-ev"):
            with ServiceClient(host, port, timeout=120) as client:
                _wait_for(lambda: len(client.status()["fleet"]["workers"])
                          == 1)
                sub = client.subscribe()
                request = client.submit_nowait([_point()])
                events = list(client.events(sub, until=request))
                results = client.result(request)
        assert len(results) == 1
        key = scheduler.point_key(_point())
        lifecycle = [e["event"] for e in events if e.get("key") == key]
        assert lifecycle == ["queued", "leased", "started", "completed"]
        by_event = {e["event"]: e for e in events if e.get("key") == key}
        assert by_event["leased"]["worker"] == "w-ev"
        assert by_event["completed"]["worker"] == "w-ev"
        assert by_event["completed"]["elapsed"] >= 0
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    finally:
        service.stop()


def test_event_subscription_key_filter():
    service = _service(lease_ttl=10.0, heartbeat=0.5)
    host, port = service.service.host, service.service.port
    wanted, other = _point(BASELINE), _point(PROMOTION)
    wanted_key = scheduler.point_key(wanted)
    try:
        with _Worker(host, port, name="w-filter"):
            with ServiceClient(host, port, timeout=120) as client:
                _wait_for(lambda: len(client.status()["fleet"]["workers"])
                          == 1)
                sub = client.subscribe(keys=[wanted_key])
                request = client.submit_nowait([wanted, other])
                events = list(client.events(sub, until=request))
                client.result(request)
        assert events, "filtered feed delivered nothing"
        assert {e.get("key") for e in events} == {wanted_key}
    finally:
        service.stop()


def test_heartbeat_keeps_slow_lease_alive(monkeypatch):
    """A point that computes longer than the lease TTL survives as long
    as heartbeats renew the deadline: no revocation, no requeue."""
    real = scheduler.run_point_task

    def slow(point, ordinal, attempt, key, engine=None):
        time.sleep(1.2)  # several TTLs at lease_ttl=0.4
        return real(point, ordinal, attempt, key, engine=engine)

    monkeypatch.setattr(scheduler, "run_point_task", slow)
    service = _service(lease_ttl=0.4, heartbeat=0.1)
    host, port = service.service.host, service.service.port
    try:
        with _Worker(host, port, name="w-slow", heartbeat=0.1):
            with ServiceClient(host, port, timeout=120) as client:
                _wait_for(lambda: len(client.status()["fleet"]["workers"])
                          == 1)
                results = client.submit([_point()])
                status = client.status()
        assert len(results) == 1
        assert status["fleet"]["requeued_total"] == 0
        assert status["fleet"]["completed_total"] == 1
    finally:
        service.stop()


def test_worker_failure_falls_back_to_local_execution(monkeypatch):
    """A deterministic failure on the worker pins the point to a clean
    in-parent run — same floor as a deterministic pool failure."""

    def broken(point, ordinal, attempt, key, engine=None):
        raise ValueError("injected remote fault")

    monkeypatch.setattr(scheduler, "run_point_task", broken)
    service = _service(lease_ttl=10.0, heartbeat=0.5)
    host, port = service.service.host, service.service.port
    try:
        with _Worker(host, port, name="w-broken"):
            with ServiceClient(host, port, timeout=120) as client:
                _wait_for(lambda: len(client.status()["fleet"]["workers"])
                          == 1)
                results = client.submit([_point()])
                status = client.status()
        assert len(results) == 1
        assert status["fleet"]["failed_total"] == 1
        assert status["counters"]["computed_ok"] == 1
    finally:
        service.stop()
    runner.clear_caches(disk=True)
    clean = runner.frontend_result("compress", BASELINE, N)
    assert _result_json(results[0]) == _result_json(clean)


def test_drain_disperses_idle_workers():
    """Drain answers worker polls with ``draining``; a non-reconnecting
    worker returns promptly."""
    service = _service(lease_ttl=10.0, heartbeat=0.5, drain_grace=0.5)
    host, port = service.service.host, service.service.port
    running = _Worker(host, port, name="w-drain")
    try:
        with ServiceClient(host, port, timeout=30) as client:
            _wait_for(lambda: len(client.status()["fleet"]["workers"]) == 1)
            client.drain()
        running.thread.join(timeout=30)
        assert not running.thread.is_alive()
        assert running.worker.completed == 0
    finally:
        running.worker.stop()
        service.stop()


def test_fleet_min_gates_dispatch():
    """With REPRO_FLEET_MIN=2 a lone worker is not preferred: the point
    runs locally and the fleet sees no lease."""
    service = _service(lease_ttl=10.0, heartbeat=0.5, fleet_min=2)
    host, port = service.service.host, service.service.port
    try:
        with _Worker(host, port, name="w-lonely"):
            with ServiceClient(host, port, timeout=120) as client:
                _wait_for(lambda: len(client.status()["fleet"]["workers"])
                          == 1)
                results = client.submit([_point()])
                status = client.status()
        assert len(results) == 1
        assert status["fleet"]["granted_total"] == 0
        assert status["counters"]["computed_ok"] == 1
    finally:
        service.stop()
