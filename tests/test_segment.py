"""Trace segment invariants: contiguity, branch limits, blocks."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.trace.segment import (
    MAX_SEGMENT_BRANCHES,
    MAX_SEGMENT_INSTRUCTIONS,
    FinalizeReason,
    SegmentBranch,
    TraceSegment,
)


def nop(addr):
    return Instruction(addr=addr, op=Opcode.NOP)


def branch(addr, target):
    return Instruction(addr=addr, op=Opcode.BNE, rs1=1, rs2=0, target=target)


def make_segment(instructions, branches=(), reason=FinalizeReason.MAX_SIZE):
    segment = TraceSegment(
        start_addr=instructions[0].addr,
        instructions=list(instructions),
        branches=list(branches),
        finalize_reason=reason,
    )
    next_addr = segment.compute_next_addr()
    segment.next_addr = -1 if next_addr is None else next_addr
    return segment


def test_straightline_segment_validates():
    segment = make_segment([nop(i) for i in range(4)])
    segment.validate()
    assert segment.next_addr == 4


def test_taken_branch_stitches_discontiguous_addresses():
    insts = [nop(10), branch(11, 50), nop(50), nop(51)]
    segment = make_segment(insts, [SegmentBranch(1, True, False)])
    segment.validate()
    assert segment.next_addr == 52


def test_not_taken_branch_falls_through():
    insts = [branch(10, 50), nop(11)]
    segment = make_segment(insts, [SegmentBranch(0, False, False)])
    segment.validate()
    assert segment.next_addr == 12


def test_discontiguity_rejected():
    insts = [branch(10, 50), nop(99)]
    segment = make_segment(insts, [SegmentBranch(0, False, False)])
    with pytest.raises(ValueError, match="discontiguous"):
        segment.validate()


def test_branch_direction_mismatch_rejected():
    # Branch embedded taken but followed by fall-through.
    insts = [branch(10, 50), nop(11)]
    segment = make_segment(insts, [SegmentBranch(0, True, False)])
    with pytest.raises(ValueError):
        segment.validate()


def test_embedded_jump_and_call_are_contiguous_via_target():
    insts = [
        Instruction(addr=0, op=Opcode.JMP, target=5),
        nop(5),
        Instruction(addr=6, op=Opcode.CALL, target=20),
        nop(20),
    ]
    segment = make_segment(insts)
    segment.validate()
    assert segment.next_addr == 21


def test_size_limit():
    segment = make_segment([nop(i) for i in range(MAX_SEGMENT_INSTRUCTIONS + 1)])
    with pytest.raises(ValueError):
        segment.validate()


def test_dynamic_branch_limit():
    insts = []
    branches = []
    addr = 0
    for k in range(MAX_SEGMENT_BRANCHES + 1):
        insts.append(branch(addr, addr + 1))
        branches.append(SegmentBranch(len(insts) - 1, True, False))
        addr += 1
    segment = make_segment(insts, branches)
    with pytest.raises(ValueError, match="dynamic branches"):
        segment.validate()


def test_promoted_branches_do_not_count_against_limit():
    insts = []
    branches = []
    addr = 0
    for k in range(5):
        insts.append(branch(addr, addr + 1))
        branches.append(SegmentBranch(len(insts) - 1, True, promoted=True))
        addr += 1
    segment = make_segment(insts, branches)
    segment.validate()
    assert segment.num_dynamic_branches == 0
    assert len(segment.promoted_branches) == 5


def test_empty_segment_rejected():
    segment = TraceSegment(start_addr=0)
    with pytest.raises(ValueError, match="empty"):
        segment.validate()


def test_unrecorded_branch_rejected():
    segment = make_segment([branch(0, 5), nop(1)])
    with pytest.raises(ValueError):
        segment.validate()


def test_block_boundaries_split_at_dynamic_branches_only():
    insts = [nop(0), branch(1, 5), nop(5), branch(6, 9), nop(9)]
    branches = [SegmentBranch(1, True, promoted=False),
                SegmentBranch(3, True, promoted=True)]
    segment = make_segment(insts, branches)
    segment.validate()
    # Blocks end at the dynamic branch (pos 1) and segment end (pos 4);
    # the promoted branch at pos 3 does not end an atomic unit.
    assert segment.block_boundaries() == [1, 4]


def test_block_boundaries_when_segment_ends_at_branch():
    insts = [nop(0), branch(1, 5)]
    segment = make_segment(insts, [SegmentBranch(1, True, False)])
    assert segment.block_boundaries() == [1]


def test_segment_ending_in_return_has_unknown_successor():
    insts = [nop(0), Instruction(addr=1, op=Opcode.RET)]
    segment = make_segment(insts, reason=FinalizeReason.SEG_ENDER)
    segment.validate()
    assert segment.next_addr == -1


def test_branch_at_lookup():
    insts = [branch(0, 5), nop(1)]
    record = SegmentBranch(0, False, False)
    segment = make_segment(insts, [record])
    assert segment.branch_at(0) is record
    assert segment.branch_at(1) is None


def test_duplicate_branch_positions_rejected():
    insts = [branch(0, 5), nop(1)]
    segment = make_segment(insts, [SegmentBranch(0, False, False),
                                   SegmentBranch(0, True, False)])
    with pytest.raises(ValueError, match="duplicate"):
        segment.validate()
