"""Targeted micro-tests of the machine's recovery machinery: inactive
issue, dormant activation, promoted-fault rollback, misfetch stalls."""

from dataclasses import replace

import pytest

from repro import BASELINE, PROMOTION, PROMOTION_COST_REG, generate_program
from repro.config import MachineConfig
from repro.core.machine import Machine
from repro.frontend.stats import CycleCategory
from repro.isa import FunctionalExecutor, assemble


def run_machine(program, frontend=BASELINE, n=None):
    machine = Machine(program, MachineConfig(frontend=frontend), max_instructions=n)
    result = machine.run()
    return machine, result


def check_arch(program, machine, n=None):
    reference = FunctionalExecutor(program, max_instructions=n)
    reference.run_to_completion()
    assert machine.arch_regs == reference.state.regs


def test_inactive_issue_happens_and_pays_off():
    """A benchmark with mispredictions must issue dormant instructions and
    activate some of them (the trace path was right, the prediction wrong)."""
    program = generate_program("compress")
    _machine, result = run_machine(program, n=20_000)
    assert result.inactive_issued > 100
    assert 0 < result.dormant_activations <= result.inactive_issued


def test_disabling_inactive_issue_zeroes_the_counters():
    program = generate_program("compress")
    frontend = replace(BASELINE, inactive_issue=False)
    machine, result = run_machine(program, frontend=frontend, n=20_000)
    assert result.inactive_issued == 0
    assert result.dormant_activations == 0
    check_arch(program, machine, n=20_000)


def test_alternating_branch_forces_activations():
    """A strictly alternating branch guarantees trace/prediction clashes:
    whichever direction the trace embeds is wrong half the time."""
    source = """
        .data
flags:  .words 1 0 1 0 1 0 1 0
        .text
main:   ADDI r10, r0, 300
loop:   ANDI r1, r10, 7
        LD r2, flags(r1)
        BEQ r2, r0, skip
        ADD r20, r20, r2
        ADD r21, r21, r2
skip:   ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""
    program = assemble(source)
    machine, result = run_machine(program, n=None)
    assert result.inactive_issued > 0
    check_arch(program, machine)
    assert machine.arch_regs[20] == 150  # every other of 300 iterations


def test_promoted_fault_recovery_is_architecturally_clean():
    """A branch that is strongly biased then flips direction forces a
    promoted-branch fault; the machine must recover exactly."""
    source = """
        .data
bias:   .words 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 1
        .text
main:   ADDI r10, r0, 640
loop:   ANDI r1, r10, 15
        LD r2, bias(r1)
        BNE r2, r0, rare
        ADDI r20, r20, 1
        JMP next
rare:   ADDI r21, r21, 1
next:   ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""
    program = assemble(source)
    frontend = replace(PROMOTION, promote_threshold=8)
    machine, result = run_machine(program, frontend=frontend, n=None)
    assert result.promotions > 0
    assert result.promoted_faults > 0
    check_arch(program, machine)
    assert machine.arch_regs[20] == 600
    assert machine.arch_regs[21] == 40


def test_fault_override_prevents_livelock():
    """After a promoted fault, refetching the same trace line must not
    fault forever: the one-shot override executes the branch correctly."""
    source = """
        .data
bias:   .words 0 0 0 0 0 0 0 1
        .text
main:   ADDI r10, r0, 320
loop:   ANDI r1, r10, 7
        LD r2, bias(r1)
        BNE r2, r0, rare
        ADDI r20, r20, 1
        JMP next
rare:   ADDI r21, r21, 1
next:   ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""
    program = assemble(source)
    frontend = replace(PROMOTION, promote_threshold=4)
    machine, result = run_machine(program, frontend=frontend, n=None)
    # Completion within the cycle cap proves no livelock; fault count is
    # bounded by the number of rare outcomes.
    assert result.promoted_faults <= 80
    check_arch(program, machine)


def test_misfetch_stalls_then_redirects(switch_program):
    machine, result = run_machine(switch_program, n=None)
    assert result.cycle_accounting[CycleCategory.MISFETCHES] > 0
    check_arch(switch_program, machine)


def test_resolution_time_grows_with_data_chained_branches():
    """A branch waiting on a cache-missing load resolves much later than
    one testing an immediately ready register."""
    fast_src = """
main:   ADDI r10, r0, 400
loop:   ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""
    slow_src = """
        .data
work:   .space 4096
        .text
main:   ADDI r10, r0, 400
loop:   MUL r1, r10, r10
        ANDI r1, r1, 4095
        LD r2, work(r1)
        ADD r3, r2, r10
        BNE r10, r3, cont
        ADDI r20, r20, 1
cont:   ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""
    fast = run_machine(assemble(fast_src), n=None)[1]
    slow = run_machine(assemble(slow_src), n=None)[1]
    # Both resolve within pipeline-scale bounds; data-chained code pays in
    # cycles per instruction even when its branches stay predictable.
    for result in (fast, slow):
        if result.resolution_count:
            assert 2.0 <= result.avg_resolution_time <= 80.0


def test_warmed_engine_reuse():
    """A machine run on an engine warmed by the front-end simulator is
    still architecturally exact and sees a warmer trace cache."""
    from repro.frontend.build import build_engine
    from repro.frontend.simulator import FrontEndSimulator

    program = generate_program("compress")
    n = 15_000
    cold_machine, cold = run_machine(program, n=n)

    engine = build_engine(program, BASELINE)
    FrontEndSimulator(program, BASELINE, max_instructions=40_000,
                      engine=engine).run()
    tc_hits_before = engine.trace_cache.stats.hits
    warm_machine = Machine(program, MachineConfig(frontend=BASELINE),
                           max_instructions=n, engine=engine)
    warm = warm_machine.run()
    check_arch(program, warm_machine, n=n)
    warm_hits = warm.tc_hits - tc_hits_before
    assert warm_hits / max(1, warm.fetches) >= \
        0.9 * (cold.tc_hits / max(1, cold.fetches))


def test_promotion_costreg_machine_counters():
    program = generate_program("plot")
    _machine, result = run_machine(program, frontend=PROMOTION_COST_REG, n=30_000)
    assert result.promoted_branches > 0
    assert result.fill_reasons  # fill unit produced segments
    assert result.retired == 30_000
