"""The paper's Figure 8: a loop of three fetch blocks.

    "If blocks are treated atomically, three trace segments containing the
    loop blocks are formed in the steady state: AB, CA, BC.  But if the
    fill unit is allowed to fragment a block ... eleven segments could be
    created."

We build exactly that loop (A=8, B=6, C=8 instructions, 22 per iteration)
and check that atomic filling reaches a small closed set of alignments
while packing dynamically unrolls it across many more segment start
addresses.
"""

import pytest

from repro import BASELINE, PACKING, FrontEndSimulator, assemble
from repro.analysis import redundancy_report

# Blocks end in conditional branches that always fall through except the
# loop backedge; sizes match the paper's figure (8 + 6 + 8 = 22).
LOOP_SOURCE = """
main:   ADDI r10, r0, 200
A:      ADD r1, r1, r10
        ADD r2, r2, r1
        ADD r3, r3, r2
        ADD r4, r4, r3
        ADD r5, r5, r4
        ADD r6, r6, r5
        ADD r7, r7, r6
        BEQ r0, r10, exit       ; A ends: never taken (r10 > 0 in loop)
B:      ADD r1, r1, r2
        ADD r2, r2, r3
        ADD r3, r3, r4
        ADD r4, r4, r5
        ADD r5, r5, r6
        BEQ r10, r0, exit       ; B ends: never taken while looping
C:      ADD r1, r1, r7
        ADD r2, r2, r1
        ADD r3, r3, r2
        ADD r4, r4, r3
        ADD r5, r5, r4
        ADD r6, r6, r5
        ADDI r10, r10, -1
        BNE r10, r0, A          ; C ends: the backedge
exit:   HALT
"""


@pytest.fixture(scope="module")
def results():
    program = assemble(LOOP_SOURCE, name="fig8")
    out = {}
    for label, config in (("atomic", BASELINE), ("packing", PACKING)):
        simulator = FrontEndSimulator(program, config, max_instructions=None)
        simulator.run()
        out[label] = (simulator, redundancy_report(simulator.engine.trace_cache))
    return out


def test_atomic_reaches_a_small_closed_alignment_set(results):
    """Atomic blocks synchronize segments at block boundaries: the steady
    state uses only a handful of distinct start addresses (paper: AB, CA,
    BC — plus warmup entry segments)."""
    _sim, report = results["atomic"]
    assert report.resident_segments <= 6


def test_packing_unrolls_into_many_alignments(results):
    """Packing fragments blocks: segments start at many distinct points of
    the 22-instruction loop body (paper: up to eleven)."""
    _sim, report = results["packing"]
    assert report.resident_segments >= 2 * results["atomic"][1].resident_segments


def test_packing_raises_duplication_on_the_loop(results):
    atomic = results["atomic"][1]
    packing = results["packing"][1]
    assert packing.duplication_factor > atomic.duplication_factor
    assert packing.duplication_factor > 1.5


def test_packing_fills_segments_fuller(results):
    atomic = results["atomic"][1]
    packing = results["packing"][1]
    assert packing.avg_segment_length > atomic.avg_segment_length
    assert packing.avg_segment_length > 12.0  # near-full 16-instruction lines


def test_packing_lifts_fetch_rate_on_the_tight_loop(results):
    """The positive side of redundancy (paper: 'loops will be dynamically
    unrolled so that a maximum number of blocks can be fetched')."""
    atomic_sim = results["atomic"][0]
    packing_sim = results["packing"][0]
    atomic_efr = atomic_sim.stats.effective_fetch_rate
    packing_efr = packing_sim.stats.effective_fetch_rate
    assert packing_efr > atomic_efr


def test_both_execute_the_loop_correctly(results):
    for label in ("atomic", "packing"):
        simulator = results[label][0]
        assert simulator.stats.useful_instructions == simulator.stats.useful_instructions
        assert simulator.recoveries < 50  # only warmup/exit mispredicts
