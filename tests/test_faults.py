"""Fault taxonomy, chaos injection, checkpoint journals, and recovery.

The acceptance bar for the supervision layer is equality: a grid run
under injected worker crashes, hangs and file corruption must produce
byte-identical results to a clean serial run, and a SIGKILLed run must
resume from its checkpoint journal recomputing only unjournaled points.
"""

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import pytest

from repro.config import BASELINE, PROMOTION_PACKING
from repro.experiments import checkpoint, diskcache, faults, runner, tracefile, warnonce
from repro.experiments.faults import GridFailures, PointFailure, PointTimeout
from repro.experiments.scheduler import GridPoint, run_grid
from repro.experiments.serialize import frontend_result_to_dict

N = 6_000

REPO = Path(__file__).parent.parent

_KNOBS = ("REPRO_DISK_CACHE", "REPRO_TRACE_FILES", "REPRO_FAULTS",
          "REPRO_RETRIES", "REPRO_POINT_TIMEOUT", "REPRO_KEEP_GOING",
          "REPRO_RESUME", "REPRO_CHECKPOINTS", "REPRO_JOBS",
          "REPRO_VALIDATE")


@pytest.fixture(autouse=True)
def fresh_state(tmp_path, monkeypatch):
    """Every test: empty cache dir, no supervision knobs, fast backoff."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for knob in _KNOBS:
        monkeypatch.delenv(knob, raising=False)
    monkeypatch.setenv("REPRO_BACKOFF", "0.01")
    runner.clear_caches()
    yield
    runner.clear_caches()


def _grid():
    return [GridPoint("frontend", b, c, N)
            for b in ("compress", "m88ksim")
            for c in (BASELINE, PROMOTION_PACKING)]


def _dicts(results):
    return {point: json.dumps(frontend_result_to_dict(result), sort_keys=True)
            for point, result in results.items()}


# --- taxonomy ----------------------------------------------------------------


def test_classify_taxonomy():
    assert faults.classify(PointTimeout("late")) == faults.TIMEOUT
    assert faults.classify(BrokenProcessPool("died")) == faults.TRANSIENT
    assert faults.classify(OSError("disk")) == faults.TRANSIENT
    assert faults.classify(EOFError()) == faults.TRANSIENT
    assert faults.classify(ValueError("bug")) == faults.DETERMINISTIC
    assert faults.classify(AssertionError()) == faults.DETERMINISTIC


def test_failure_report_helpers():
    failure = PointFailure(point=GridPoint("frontend", "compress", BASELINE, N),
                           kind=faults.DETERMINISTIC, attempts=2,
                           error="ValueError: boom")
    rows = faults.failure_rows([failure])
    assert rows == [["frontend", "compress", BASELINE.describe(),
                     "deterministic", "2", "ValueError: boom"]]
    assert len(rows[0]) == len(faults.FAILURE_HEADERS)
    assert faults.format_error(ValueError("boom")) == "ValueError: boom"
    assert len(faults.format_error(ValueError("x" * 500))) == 120
    exc = GridFailures([failure], {"a": 1})
    assert "1 grid point(s) failed" in str(exc)
    assert exc.failures == [failure] and exc.results == {"a": 1}


# --- policy knobs ------------------------------------------------------------


def test_resolve_retries(monkeypatch):
    assert faults.resolve_retries() == 2
    assert faults.resolve_retries(5) == 5
    assert faults.resolve_retries(-3) == 0
    monkeypatch.setenv("REPRO_RETRIES", "7")
    assert faults.resolve_retries() == 7
    monkeypatch.setenv("REPRO_RETRIES", "lots")
    with pytest.warns(RuntimeWarning, match="REPRO_RETRIES"):
        assert faults.resolve_retries() == 2


def test_resolve_timeout(monkeypatch):
    assert faults.resolve_timeout() is None
    assert faults.resolve_timeout(1.5) == 1.5
    assert faults.resolve_timeout(0) is None
    monkeypatch.setenv("REPRO_POINT_TIMEOUT", "2.5")
    assert faults.resolve_timeout() == 2.5
    monkeypatch.setenv("REPRO_POINT_TIMEOUT", "-1")
    assert faults.resolve_timeout() is None


def test_resolve_keep_going_and_backoff(monkeypatch):
    assert faults.resolve_keep_going() is False
    assert faults.resolve_keep_going(True) is True
    monkeypatch.setenv("REPRO_KEEP_GOING", "1")
    assert faults.resolve_keep_going() is True
    assert faults.resolve_backoff(0.5) == 0.5
    assert faults.resolve_backoff() == 0.01  # fixture sets REPRO_BACKOFF
    assert faults.backoff_delay(0.1, 1) == pytest.approx(0.1)
    assert faults.backoff_delay(0.1, 3) == pytest.approx(0.4)
    assert faults.backoff_delay(0.1, 100) == pytest.approx(0.1 * 2 ** 6)
    assert faults.backoff_delay(0.0, 3) == 0.0


# --- fault spec parsing and firing -------------------------------------------


def test_parse_spec():
    specs = faults.parse_spec("crash:0.1, hang:p3:5, corrupt-cache:p7")
    assert specs == (
        faults.FaultSpec("crash", probability=0.1),
        faults.FaultSpec("hang", ordinal=3, arg=5.0),
        faults.FaultSpec("corrupt-cache", ordinal=7),
    )


def test_parse_spec_drops_malformed_entries():
    with pytest.warns(RuntimeWarning, match="malformed REPRO_FAULTS"):
        specs = faults.parse_spec("explode:p1,crash:p2,hang:nine,crash:1.5")
    assert specs == (faults.FaultSpec("crash", ordinal=2),)


def test_ordinal_faults_fire_on_first_attempt_only():
    spec = faults.FaultSpec("crash", ordinal=3)
    assert faults._fires(spec, "key", ordinal=3, attempt=0)
    assert not faults._fires(spec, "key", ordinal=3, attempt=1)
    assert not faults._fires(spec, "key", ordinal=2, attempt=0)


def test_probability_faults_are_deterministic():
    always = faults.FaultSpec("crash", probability=1.0)
    never = faults.FaultSpec("crash", probability=0.0)
    for attempt in range(4):
        assert faults._fires(always, "key", 0, attempt)
        assert not faults._fires(never, "key", 0, attempt)
    half = faults.FaultSpec("crash", probability=0.5)
    first = [faults._fires(half, f"k{i}", 0, 0) for i in range(64)]
    second = [faults._fires(half, f"k{i}", 0, 0) for i in range(64)]
    assert first == second  # hashed, not random
    assert any(first) and not all(first)


def test_faults_never_fire_outside_armed_workers(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0")
    assert faults.active_spec() == ()  # this process is the parent
    monkeypatch.setattr(faults, "_in_worker", True)
    assert faults.active_spec() == (faults.FaultSpec("crash", probability=1.0),)


# --- chaos equality ----------------------------------------------------------


def test_chaos_crash_and_corruption_matches_clean_serial(monkeypatch):
    """Worker crash + cache corruption + trace corruption: byte-identical."""
    serial = _dicts(run_grid(_grid(), jobs=1))
    runner.clear_caches(disk=True)

    # Ordinal 0 crashes its worker, ordinal 1's fresh cache entry is
    # stamped with garbage, ordinal 2's oracle trace file is corrupted.
    monkeypatch.setenv("REPRO_FAULTS", "crash:p0,corrupt-cache:p1,corrupt-trace:p2")
    monkeypatch.setenv("REPRO_RETRIES", "3")
    faulted = _dicts(run_grid(_grid(), jobs=2))
    assert faulted == serial


def test_chaos_hang_is_killed_and_retried(monkeypatch):
    """A hung worker blows its deadline, is killed, and the retry wins."""
    serial = _dicts(run_grid(_grid(), jobs=1))
    runner.clear_caches(disk=True)

    monkeypatch.setenv("REPRO_FAULTS", "hang:p1:30")
    monkeypatch.setenv("REPRO_POINT_TIMEOUT", "2")
    start = time.monotonic()
    faulted = _dicts(run_grid(_grid(), jobs=2))
    assert faulted == serial
    # The hang was cut at the ~2s deadline, not slept through.
    assert time.monotonic() - start < 25


def test_persistent_crashes_degrade_to_serial(monkeypatch):
    """crash:1.0 fires on every pooled attempt; the serial floor finishes."""
    grid = _grid()[:2]
    serial = _dicts(run_grid(grid, jobs=1))
    runner.clear_caches(disk=True)
    warnonce.reset()

    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0")
    monkeypatch.setenv("REPRO_RETRIES", "10")
    with pytest.warns(RuntimeWarning, match="serially"):
        faulted = _dicts(run_grid(grid, jobs=2))
    assert faulted == serial


# --- deterministic failures --------------------------------------------------


def _break_benchmark(monkeypatch, benchmark):
    import repro.experiments.scheduler as scheduler

    real = scheduler._run_point

    def selective(point, **kwargs):
        if point.benchmark == benchmark:
            raise ValueError(f"injected bug in {benchmark}")
        return real(point, **kwargs)

    monkeypatch.setattr(scheduler, "_run_point", selective)
    return real


def test_deterministic_failure_fails_fast_with_original_exception(monkeypatch):
    _break_benchmark(monkeypatch, "m88ksim")
    with pytest.raises(ValueError, match="injected bug"):
        run_grid(_grid(), jobs=1)


def test_keep_going_collects_failures_and_results(monkeypatch):
    _break_benchmark(monkeypatch, "m88ksim")
    with pytest.raises(GridFailures) as info:
        run_grid(_grid(), jobs=1, keep_going=True)
    failed = info.value
    assert len(failed.failures) == 2
    assert len(failed.results) == 2
    assert all(f.kind == faults.DETERMINISTIC for f in failed.failures)
    assert all(f.point.benchmark == "m88ksim" for f in failed.failures)
    assert "injected bug" in failed.failures[0].error
    assert "ValueError" in failed.failures[0].traceback


def test_transient_failures_exhaust_retries(monkeypatch):
    import repro.experiments.scheduler as scheduler

    attempts = []

    def flaky(point, **kwargs):
        attempts.append(point)
        raise OSError("disk went away")

    monkeypatch.setattr(scheduler, "_run_point", flaky)
    point = GridPoint("frontend", "compress", BASELINE, N)
    with pytest.raises(GridFailures) as info:
        run_grid([point], jobs=1, max_retries=2)
    assert len(attempts) == 3  # first try + 2 retries
    (failure,) = info.value.failures
    assert failure.kind == faults.TRANSIENT and failure.attempts == 3


# --- checkpoint journals -----------------------------------------------------


def _journal_path(points):
    keys = [runner.frontend_cache_key(p.benchmark, p.config, p.n)
            for p in points]
    return checkpoint.checkpoint_dir() / f"{checkpoint.grid_key(keys)}.jsonl"


def test_failed_grid_leaves_journal_and_resume_recomputes_only_missing(
        monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")  # the journal, not the cache
    grid = _grid()
    real = _break_benchmark(monkeypatch, "m88ksim")
    with pytest.raises(GridFailures):
        run_grid(grid, jobs=1, keep_going=True)

    journal = _journal_path(grid)
    assert journal.exists()
    assert len(journal.read_text().splitlines()) == 2  # the compress points

    import repro.experiments.scheduler as scheduler

    recomputed = []

    def counting(point, **kwargs):
        recomputed.append(point)
        return real(point, **kwargs)

    monkeypatch.setattr(scheduler, "_run_point", counting)
    runner.clear_caches()  # drop memos: only the journal can serve now
    results = run_grid(grid, jobs=1)
    assert len(results) == 4
    assert sorted(p.benchmark for p in recomputed) == ["m88ksim", "m88ksim"]
    assert not journal.exists()  # clean completion drops the journal


def test_clean_grid_leaves_no_journal():
    grid = _grid()[:2]
    run_grid(grid, jobs=1)
    assert not _journal_path(grid).exists()
    assert checkpoint.stats()["entries"] == 0


def test_no_resume_ignores_journal(monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    real = _break_benchmark(monkeypatch, "m88ksim")
    with pytest.raises(GridFailures):
        run_grid(_grid(), jobs=1, keep_going=True)

    import repro.experiments.scheduler as scheduler

    recomputed = []

    def counting(point, **kwargs):
        recomputed.append(point)
        return real(point, **kwargs)

    monkeypatch.setattr(scheduler, "_run_point", counting)
    runner.clear_caches()
    run_grid(_grid(), jobs=1, resume=False)
    assert len(recomputed) == 4  # every point, journal deliberately unused


def test_journal_reader_tolerates_damage(tmp_path):
    keys = ["a" * 64, "b" * 64]
    journal = checkpoint.Journal(keys)
    journal.record(keys[0], "frontend", {"x": 1})
    journal.close()
    with open(journal.path, "a") as handle:
        handle.write(json.dumps({"v": -1, "key": keys[1], "kind": "frontend",
                                 "payload": {}}) + "\n")   # wrong version
        handle.write(json.dumps({"v": 1, "key": "f" * 64, "kind": "frontend",
                                 "payload": {}}) + "\n")   # foreign key
        handle.write('{"v": 1, "key": "' + keys[1])        # SIGKILL torn line
    restored = checkpoint.Journal(keys).load()
    assert restored == {keys[0]: ("frontend", {"x": 1})}


def test_journal_write_failure_disables_with_one_warning():
    directory = checkpoint.checkpoint_dir()
    directory.parent.mkdir(parents=True, exist_ok=True)
    directory.write_text("not a directory")  # mkdir under it must fail
    journal = checkpoint.Journal(["a" * 64])
    with pytest.warns(RuntimeWarning, match="journaling disabled"):
        journal.record("a" * 64, "frontend", {"x": 1})
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        journal.record("a" * 64, "frontend", {"x": 2})  # silent no-op now


def test_checkpoints_can_be_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINTS", "0")
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    grid = _grid()
    _break_benchmark(monkeypatch, "m88ksim")
    with pytest.raises(GridFailures):
        run_grid(grid, jobs=1, keep_going=True)
    assert not _journal_path(grid).exists()
    assert checkpoint.stats()["entries"] == 0


def test_sigkilled_run_resumes_from_journal(monkeypatch):
    """SIGKILL a grid mid-run; the resumed run recomputes only the
    unjournaled point (asserted by journal inspection and a call count)."""
    points = [GridPoint("frontend", "compress", BASELINE, N),
              GridPoint("frontend", "compress", PROMOTION_PACKING, N)]
    journal = _journal_path(points)

    script = (
        "from repro.config import BASELINE, PROMOTION_PACKING\n"
        "from repro.experiments.scheduler import GridPoint, run_grid\n"
        f"run_grid([GridPoint('frontend', 'compress', BASELINE, {N}),\n"
        f"          GridPoint('frontend', 'compress', PROMOTION_PACKING, {N})],\n"
        "         jobs=2)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    # Ordinal 0 (BASELINE, first at equal cost) hangs far past the test;
    # ordinal 1 completes and is journaled.  No deadline, so the child
    # blocks forever on the hung worker until we SIGKILL the whole group.
    env["REPRO_FAULTS"] = "hang:p0:600"
    env["REPRO_DISK_CACHE"] = "0"
    child = subprocess.Popen([sys.executable, "-c", script], env=env,
                             cwd=REPO, start_new_session=True,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal.exists() and journal.read_text().endswith("\n"):
                break
            if child.poll() is not None:
                pytest.fail("child exited before journaling anything")
            time.sleep(0.2)
        else:
            pytest.fail("journal never appeared")
    finally:
        try:
            os.killpg(child.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        child.wait(timeout=30)

    entries = [json.loads(line) for line in journal.read_text().splitlines()]
    packing_key = runner.frontend_cache_key("compress", PROMOTION_PACKING, N)
    assert [entry["key"] for entry in entries] == [packing_key]

    import repro.experiments.scheduler as scheduler

    real = scheduler._run_point
    recomputed = []

    def counting(point, **kwargs):
        recomputed.append(point)
        return real(point, **kwargs)

    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    monkeypatch.setattr(scheduler, "_run_point", counting)
    results = run_grid(points, jobs=1)
    assert len(results) == 2
    assert [p.config for p in recomputed] == [BASELINE]  # journal served the rest
    assert not journal.exists()


def test_sigint_interrupted_run_leaves_resumable_journal(monkeypatch):
    """Ctrl-C (SIGINT to the parent only) mid-grid must (a) actually
    terminate the run instead of wedging interpreter exit behind the
    hung worker, and (b) leave the checkpoint journal resumable, so the
    next run recomputes only the interrupted point."""
    points = [GridPoint("frontend", "compress", BASELINE, N),
              GridPoint("frontend", "compress", PROMOTION_PACKING, N)]
    journal = _journal_path(points)

    script = (
        "from repro.config import BASELINE, PROMOTION_PACKING\n"
        "from repro.experiments.scheduler import GridPoint, run_grid\n"
        f"run_grid([GridPoint('frontend', 'compress', BASELINE, {N}),\n"
        f"          GridPoint('frontend', 'compress', PROMOTION_PACKING, {N})],\n"
        "         jobs=2)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_FAULTS"] = "hang:p0:600"
    env["REPRO_DISK_CACHE"] = "0"
    child = subprocess.Popen([sys.executable, "-c", script], env=env,
                             cwd=REPO, start_new_session=True,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal.exists() and journal.read_text().endswith("\n"):
                break
            if child.poll() is not None:
                pytest.fail("child exited before journaling anything")
            time.sleep(0.2)
        else:
            pytest.fail("journal never appeared")
        os.kill(child.pid, signal.SIGINT)  # the parent only, like Ctrl-C
        # The regression: exit used to block on the executor's atexit
        # join of the hung worker.  The scheduler now kills the pool on
        # the way out, so the child must die promptly.
        returncode = child.wait(timeout=30)
        assert returncode != 0
    finally:
        try:
            os.killpg(child.pid, signal.SIGKILL)  # sweep any stragglers
        except ProcessLookupError:
            pass
        child.wait(timeout=30)

    entries = [json.loads(line) for line in journal.read_text().splitlines()]
    packing_key = runner.frontend_cache_key("compress", PROMOTION_PACKING, N)
    assert [entry["key"] for entry in entries] == [packing_key]

    import repro.experiments.scheduler as scheduler

    real = scheduler._run_point
    recomputed = []

    def counting(point, **kwargs):
        recomputed.append(point)
        return real(point, **kwargs)

    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    monkeypatch.setattr(scheduler, "_run_point", counting)
    results = run_grid(points, jobs=1)
    assert len(results) == 2
    assert [p.config for p in recomputed] == [BASELINE]
    assert not journal.exists()


# --- satellite robustness fixes ----------------------------------------------


def test_diskcache_store_reraises_keyboard_interrupt(monkeypatch):
    def interrupted(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(json, "dump", interrupted)
    with pytest.raises(KeyboardInterrupt):
        diskcache.store("e" * 64, "frontend", {"x": 1})
    # The temp file was cleaned up before the interrupt escaped.
    assert list(diskcache.cache_dir().glob("*.tmp")) == []


def test_shared_warn_latch_spans_processes():
    assert warnonce.warn_once("shared-test", "first", shared=True) is True
    # Simulate a sibling process: fresh per-process state, same cache dir.
    warnonce._emitted.clear()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert warnonce.warn_once("shared-test", "again", shared=True) is False
    warnonce.reset()  # clears the marker files too
    with pytest.warns(RuntimeWarning, match="fresh"):
        assert warnonce.warn_once("shared-test", "fresh", shared=True) is True


def test_corrupt_trace_warns_once_and_recovers():
    oracle = runner.get_oracle("compress", N)
    path = tracefile.trace_path("compress", N)
    assert path.exists()
    faults._corrupt_file(path)
    runner._oracles.clear()
    program = runner.get_program("compress")
    with pytest.warns(RuntimeWarning, match="corrupt oracle trace"):
        assert tracefile.load_oracle("compress", N, program) is None
    assert not path.exists()  # moved aside so it cannot shadow the rewrite
    # The corrupt bytes were quarantined as evidence, not destroyed.
    quarantined = list(diskcache.quarantine_dir().glob(f"{path.name}.*"))
    assert len(quarantined) == 1
    recovered = runner.get_oracle("compress", N)  # recomputes + re-stores
    assert len(recovered) == len(oracle)
    assert path.exists()


def test_corrupt_trace_quarantine_tolerates_losing_the_race(monkeypatch):
    """Two processes race to quarantine the same corrupt trace: the one
    whose rename loses must treat FileNotFoundError as success."""
    runner.get_oracle("compress", N)
    path = tracefile.trace_path("compress", N)
    faults._corrupt_file(path)
    runner._oracles.clear()

    real_replace = os.replace

    def racing_replace(src, dst, *args, **kwargs):
        if str(src) == str(path):
            real_replace(src, dst)  # the concurrent worker wins first...
            raise FileNotFoundError(str(src))  # ...then we lose the race
        return real_replace(src, dst, *args, **kwargs)

    monkeypatch.setattr(os, "replace", racing_replace)
    program = runner.get_program("compress")
    with pytest.warns(RuntimeWarning, match="corrupt oracle trace"):
        assert tracefile.load_oracle("compress", N, program) is None
    assert not path.exists()
